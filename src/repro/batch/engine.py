"""The ``TrialEngine`` protocol: one shape for every vectorized estimator.

The paper's central symmetry result — a trial's posterior entropy depends
only on which symmetric *observation class* the trial falls into — used to be
implemented once per domain, each time as a private pipeline with its own
attribute set inside :class:`~repro.batch.estimator.BatchMonteCarlo`.  This
module factors the shared shape out into one formal protocol:

``sample_block``
    Draw one columnar block of trials (struct-of-arrays ``int64`` columns)
    from the engine's model/strategy, consuming the generator in a fixed,
    documented order.
``classify``
    Reduce a block to a histogram ``{class key: (count, representative)}``
    with array operations.  ``representative`` is the block index of the
    first trial of the class (or ``None`` for engines whose keys are
    self-describing).
``score``
    Price one class key *exactly* — entropy bits plus an identified flag —
    via the closed form, the fragment-arrangement counts, or the cycle walk
    counts.  Scoring happens once per distinct key, never per trial.

The concrete driver :meth:`TrialEngine.run_accumulate` reduces a run to a
:class:`BatchAccumulator` — per-class counts plus a length sum — the currency
every layer above understands: the ``sharded`` backend ships accumulators
between processes, the adaptive scheduler merges them block by block, and the
result cache replays the reports they summarise bit for bit.  Each chunk runs
through :meth:`TrialEngine.fused_accumulate`: by default the staged
three-stage pipeline, overridden by the five-class, arrangement, and cycle
engines with the single-pass kernels of :mod:`repro.batch.fused` (and, when
numba is installed, by the compiled engines of :mod:`repro.batch.jit`) —
all draw-for-draw identical to the staged path.  The driver also owns
chunk-size autotuning: ``chunk_trials = AUTO_CHUNK`` walks a fixed geometric
ladder once and locks in the fastest rung (see ``docs/backends.md``).

Engines register themselves in a registry that mirrors
:func:`repro.batch.backends.register_backend`:
:func:`register_engine` adds an engine class, :func:`select_engine` picks the
engine for a ``(model, strategy, compromised)`` configuration by asking each
registered engine's :meth:`TrialEngine.covers` predicate, latest registration
first — so a user-registered engine preempts the built-ins on any domain it
claims, and a new domain becomes a registration instead of a fork of the
subsystem.  Four built-in engines cover the whole supported domain:

================  =============================================  ==========================
engine            domain                                         classes
================  =============================================  ==========================
``five-class``    simple paths, ``C = 1``, compromised receiver  the paper's five events
``arrangement``   simple paths, any ``C``, honest receiver ok    ``(length, position-mask)``
``cycle``         cycle-allowed paths, ``C = 1``                 walk patterns
``cycle-multi``   cycle-allowed paths, ``C != 1`` (incl. 0)      walk patterns (multi-node)
================  =============================================  ==========================

The two simple-path engines live in this module; the cycle engines live in
:mod:`repro.batch.cycleengine` (they carry their own sampler and score
table).  :class:`~repro.batch.estimator.BatchMonteCarlo` is a thin
dispatcher over :func:`select_engine`.
"""

from __future__ import annotations

import abc
import logging
import math
from collections.abc import Callable
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

from repro.batch._accel import resolve_use_numpy
from repro.batch.classify import class_counts, classify_columns
from repro.batch.multiclass import ClassScoreTable, count_class_keys
from repro.batch.sampler import BatchTrialSampler, MultiTrialSampler
from repro.core.anonymity import AnonymityAnalyzer
from repro.core.events import EVENT_ORDER
from repro.core.model import PathModel, SystemModel
from repro.distributions.base import PathLengthDistribution
from repro.exceptions import ConfigurationError
from repro.routing.strategies import PathSelectionStrategy
from repro.simulation.results import IDENTIFIED_THRESHOLD, EstimateWithCI
from repro.telemetry.metrics import DEFAULT_RATE_BUCKETS, get_registry
from repro.utils.rng import RandomSource, ensure_rng

if TYPE_CHECKING:
    import numpy as np

    from repro.simulation.experiment import MonteCarloReport

logger = logging.getLogger(__name__)

__all__ = [
    "AUTO_CHUNK",
    "AUTOTUNE_LADDER",
    "BatchAccumulator",
    "TrialEngine",
    "FiveClassEngine",
    "ArrangementEngine",
    "available_engines",
    "get_engine",
    "register_engine",
    "select_engine",
    "validate_chunk_trials",
]

#: Relative tolerance when merging per-class entropies across shards; scores
#: are deterministic functions of the class, so any real disagreement means
#: the shards were configured inconsistently.
_MERGE_RTOL = 1e-9

#: ``chunk_trials`` sentinel that turns on chunk-size autotuning: the driver
#: walks :data:`AUTOTUNE_LADDER` once (timing each rung with the injectable
#: telemetry clock) and then locks in the fastest rung.  Opt-in — the
#: defaults (``None`` or a constant) stay bit-reproducible across machines,
#: autotuned runs are reproducible only for a fixed clock (see
#: ``docs/backends.md``).
AUTO_CHUNK = "auto"

#: The fixed geometric warmup ladder of chunk autotuning.  Rungs are measured
#: in ladder order, one full chunk each; ties break toward the earlier rung,
#: so for a given sequence of clock readings the choice is deterministic.
AUTOTUNE_LADDER: tuple[int, ...] = (4_096, 8_192, 16_384, 32_768, 65_536)


def validate_chunk_trials(value: int | str | None) -> int | str | None:
    """Validate a ``chunk_trials`` setting and return it unchanged.

    Accepts ``None`` (one block per run), :data:`AUTO_CHUNK`, or an integer
    ``>= 1``.  Anything else — notably ``0`` or a negative count, which would
    spin :meth:`TrialEngine.run_accumulate` forever without ever shrinking the
    remaining budget — raises a :class:`~repro.exceptions.ConfigurationError`.
    """
    if value is None or value == AUTO_CHUNK:
        return value
    if isinstance(value, bool) or not isinstance(value, int) or value < 1:
        raise ConfigurationError(
            f"chunk_trials must be None, {AUTO_CHUNK!r}, or an integer >= 1, got {value!r}"
        )
    return value


@dataclass(frozen=True)
class BatchAccumulator:
    """Sufficient statistics of one batch run: per-class counts plus totals.

    ``classes`` maps an opaque, hashable class key to
    ``(count, entropy_bits, identified)``.  Because every trial of a class has
    the same exact posterior entropy, these counts — together with the summed
    path lengths — determine the full Monte-Carlo report: mean, sample
    variance, confidence interval, and identification rate.  Accumulators are
    tiny (a few dozen classes), picklable, and merge by summation, which is
    what the ``sharded`` backend ships across process boundaries instead of
    per-trial columns.
    """

    n_trials: int
    length_sum: int
    classes: dict[object, tuple[int, float, bool]]

    @staticmethod
    def merge(parts: "list[BatchAccumulator]") -> "BatchAccumulator":
        """Sum accumulators from independent shards into one."""
        if not parts:
            raise ConfigurationError("cannot merge zero batch accumulators")
        classes: dict[object, tuple[int, float, bool]] = {}
        n_trials = 0
        length_sum = 0
        for part in parts:
            n_trials += part.n_trials
            length_sum += part.length_sum
            for key, (count, entropy, identified) in part.classes.items():
                existing = classes.get(key)
                if existing is None:
                    classes[key] = (count, entropy, identified)
                    continue
                if not math.isclose(existing[1], entropy, rel_tol=_MERGE_RTOL):
                    raise ConfigurationError(
                        f"shard accumulators disagree on the entropy of class "
                        f"{key!r} ({existing[1]!r} vs {entropy!r}); shards must "
                        "share one model/strategy configuration"
                    )
                classes[key] = (existing[0] + count, existing[1], existing[2])
        return BatchAccumulator(
            n_trials=n_trials, length_sum=length_sum, classes=classes
        )

    def grouped_moments(self) -> tuple[float, float]:
        """Exact sample mean and ddof-1 standard error from the grouped counts.

        Per-trial entropy samples within a class are identical, so both
        moments follow exactly from the per-class counts; keys are folded in
        sorted order so the result is independent of dictionary insertion
        order.  This is the single source of the estimate's statistics —
        :meth:`report` and the adaptive scheduler's stopping rule both read
        it, so they can never disagree on the confidence interval.
        """
        n = self.n_trials
        if n < 1:
            raise ConfigurationError("cannot summarise an empty accumulator")
        ordered = [self.classes[key] for key in sorted(self.classes, key=repr)]
        mean = sum(count * entropy for count, entropy, _ in ordered) / n
        if n == 1:
            return mean, math.inf
        variance = (
            sum(count * (entropy - mean) ** 2 for count, entropy, _ in ordered)
            / (n - 1)
        )
        return mean, math.sqrt(variance / n)

    def report(self, model: SystemModel, distribution_name: str) -> "MonteCarloReport":
        """Summarise into a :class:`~repro.simulation.experiment.MonteCarloReport`."""
        from repro.simulation.experiment import MonteCarloReport

        n = self.n_trials
        mean, std_error = self.grouped_moments()
        identified = sum(
            count for count, _, flag in self.classes.values() if flag
        )
        return MonteCarloReport(
            estimate=EstimateWithCI(mean=mean, std_error=std_error, n_samples=n),
            n_trials=n,
            distribution=distribution_name,
            model=model,
            mean_path_length=self.length_sum / n,
            identification_rate=identified / n,
        )


class TrialEngine(abc.ABC):
    """One vectorized estimation pipeline: ``sample_block → classify → score``.

    An engine binds one ``(model, strategy, compromised)`` configuration at
    construction; :meth:`run_accumulate` then turns trial budgets into
    :class:`BatchAccumulator` reductions through the three stages.  Engines
    advertise their domain through the :meth:`covers` class predicate, which
    is what :func:`select_engine` consults.

    Determinism contract: :meth:`sample_block` must consume a fixed number of
    bulk draws in a fixed order per block, and :attr:`chunk_trials` (when not
    ``None``) fixes how a budget splits into blocks — so a run is a pure
    function of the seed, identical between the pure-Python and NumPy
    kernels, and shard merges can never disagree on a class entropy.
    Engines that override :meth:`fused_accumulate` must keep the fused kernel
    draw-for-draw identical to the staged stages (same generator consumption,
    same class histogram, same scores); the parity tests in
    ``tests/test_fused.py`` enforce this bit for bit.  The :data:`AUTO_CHUNK`
    setting trades that bit-stability across machines for throughput: the
    chunk sequence then depends on the telemetry clock's readings (and only
    on them), so autotuned results are reproducible for a fixed clock but
    not across hosts — which is why the adaptive service never caches them.
    """

    #: Registry key and display name of the engine.
    name: str = "abstract"
    #: Trials sampled per columnar block.  ``None`` runs the whole budget as
    #: one block; a constant bounds the live column memory of huge runs and
    #: is part of the ``(seed -> bits)`` determinism contract;
    #: :data:`AUTO_CHUNK` lets the driver pick the fastest rung of
    #: :data:`AUTOTUNE_LADDER` (opting out of cross-machine bit-stability).
    chunk_trials: int | str | None = None

    def __init__(
        self,
        model: SystemModel,
        strategy: PathSelectionStrategy,
        compromised: frozenset[int],
        use_numpy: bool | None = None,
    ) -> None:
        self.model = model
        self.strategy = strategy
        self.compromised = frozenset(compromised)
        self.use_numpy = use_numpy
        if any(not 0 <= node < model.n_nodes for node in self.compromised):
            raise ConfigurationError(
                "compromised node identities must lie in [0, N)"
            )
        validate_chunk_trials(self.chunk_trials)
        self._distribution = strategy.effective_distribution(model.n_nodes)
        #: Per-key score cache: scores are pure functions of the key for a
        #: fixed engine configuration, so pricing survives across chunks and
        #: runs of one instance.
        self._score_memo: dict[object, tuple[float, bool]] = {}
        # Autotune state lives on the instance so the warmup ladder spans
        # run_accumulate calls (adaptive rounds are smaller than the ladder).
        self._autotune_samples: list[float] = []
        self._autotuned_chunk: int | None = None

    # ------------------------------------------------------------------ #
    # Domain                                                              #
    # ------------------------------------------------------------------ #

    @classmethod
    @abc.abstractmethod
    def covers(
        cls,
        model: SystemModel,
        strategy: PathSelectionStrategy,
        compromised: frozenset[int],
    ) -> bool:
        """True when this engine can estimate the given configuration."""

    @property
    def distribution(self) -> PathLengthDistribution:
        """The effective (feasibility-truncated) distribution being estimated."""
        return self._distribution

    # ------------------------------------------------------------------ #
    # The three stages                                                    #
    # ------------------------------------------------------------------ #

    @abc.abstractmethod
    def sample_block(self, n_trials: int, generator: "np.random.Generator") -> Any:
        """Draw one columnar block of ``n_trials`` trials."""

    @abc.abstractmethod
    def classify(self, block: Any) -> dict[object, tuple[int, int | None]]:
        """Histogram a block into ``{class key: (count, representative)}``.

        ``representative`` is the block index of the first trial of the class
        when :meth:`score` needs a concrete trial to price the class, or
        ``None`` when the key alone suffices.
        """

    @abc.abstractmethod
    def score(
        self, key: object, block: Any, representative: int | None
    ) -> tuple[float, bool]:
        """Exact ``(entropy_bits, identified)`` of one observation class."""

    # ------------------------------------------------------------------ #
    # The driver                                                          #
    # ------------------------------------------------------------------ #

    def block_length_sum(self, block: Any) -> int:
        """Summed path length of one block (NumPy-accelerated when enabled)."""
        if resolve_use_numpy(self.use_numpy):
            return int(block.as_numpy()[1].sum())
        return sum(block.lengths)

    def fused_accumulate(
        self, n_trials: int, generator: "np.random.Generator"
    ) -> tuple[int, dict[object, tuple[int, float, bool]]]:
        """One chunk, reduced to ``(length_sum, {key: (count, entropy, identified)})``.

        The default implementation is the staged pipeline —
        ``sample_block → classify → score`` — with per-key scores memoised on
        the instance so a class is priced exactly once no matter how many
        chunks (or runs) it appears in.  Engines with a single-pass kernel
        (see :mod:`repro.batch.fused`) override this to draw, encode, and
        reduce without materialising the intermediate block; overrides must
        stay draw-for-draw identical to this staged path.
        """
        block = self.sample_block(n_trials, generator)
        length_sum = self.block_length_sum(block)
        memo = self._score_memo
        classes: dict[object, tuple[int, float, bool]] = {}
        for key, (count, representative) in self.classify(block).items():
            score = memo.get(key)
            if score is None:
                score = self.score(key, block, representative)
                memo[key] = score
            classes[key] = (count, score[0], score[1])
        return length_sum, classes

    @property
    def autotuned_chunk(self) -> int | None:
        """The chunk size chosen by :data:`AUTO_CHUNK` warmup, once decided."""
        return self._autotuned_chunk

    def _autotune_next_chunk(self) -> int:
        """The next chunk size under autotuning: the current rung, or the pick."""
        if self._autotuned_chunk is not None:
            return self._autotuned_chunk
        return AUTOTUNE_LADDER[len(self._autotune_samples)]

    def _autotune_record(
        self, block_trials: int, chunk_seconds: float, telemetry: Any
    ) -> None:
        """Record one warmup measurement; lock in the winner after the ladder.

        Only full rungs count — a run ending mid-rung leaves the ladder where
        it was, and the next ``run_accumulate`` call resumes it.  Throughput
        ties break toward the earlier (smaller) rung, so the decision is a
        deterministic function of the clock readings alone.
        """
        if self._autotuned_chunk is not None:
            return
        samples = self._autotune_samples
        if block_trials != AUTOTUNE_LADDER[len(samples)]:
            return
        samples.append(
            block_trials / chunk_seconds if chunk_seconds > 0.0 else math.inf
        )
        if len(samples) == len(AUTOTUNE_LADDER):
            best = max(range(len(samples)), key=samples.__getitem__)
            self._autotuned_chunk = AUTOTUNE_LADDER[best]
            logger.debug(
                "engine %s autotuned chunk_trials=%d (throughputs %r)",
                self.name,
                self._autotuned_chunk,
                samples,
            )
            if telemetry.enabled:
                telemetry.gauge(
                    "engine_chunk_autotuned", engine=self.name
                ).set(self._autotuned_chunk)

    def run_accumulate(
        self, n_trials: int, rng: RandomSource = None
    ) -> BatchAccumulator:
        """Run ``n_trials`` trials through the fused chunks; one accumulator.

        This is the shard-sized unit of work of the ``sharded`` backend: the
        returned accumulator is a columnar reduction (per-class counts plus a
        length sum), cheap to pickle and mergeable by summation.  Each chunk
        runs through :meth:`fused_accumulate` — the engine's single-pass
        kernel where one exists, the staged three-stage pipeline otherwise —
        and each distinct class key is priced exactly once per instance, on
        first sight.

        When telemetry is active (see :mod:`repro.telemetry`), every chunk
        reports its trial count, wall time, and throughput under the engine's
        name; with the default null registry the instrumentation cost is one
        ``enabled`` check per chunk.  Under :data:`AUTO_CHUNK` the clock is
        read regardless — the warmup ladder needs the timings — and the
        chosen chunk size is surfaced as the ``engine_chunk_autotuned`` gauge.
        """
        if n_trials < 1:
            raise ConfigurationError("n_trials must be >= 1")
        # Re-validated here (not only at construction) because chunk_trials
        # is also assignable on instances; a 0 would otherwise loop forever.
        chunk_setting = validate_chunk_trials(self.chunk_trials)
        autotuning = chunk_setting == AUTO_CHUNK
        generator = ensure_rng(rng)
        telemetry = get_registry()
        classes: dict[object, list] = {}
        length_sum = 0
        remaining = n_trials
        while remaining:
            if autotuning:
                block_trials = min(self._autotune_next_chunk(), remaining)
            elif chunk_setting is None:
                block_trials = remaining
            else:
                assert isinstance(chunk_setting, int)
                block_trials = min(chunk_setting, remaining)
            remaining -= block_trials
            timed = autotuning or telemetry.enabled
            chunk_started = telemetry.clock() if timed else 0.0
            chunk_length, chunk_classes = self.fused_accumulate(
                block_trials, generator
            )
            length_sum += chunk_length
            for key, (count, entropy, identified) in chunk_classes.items():
                entry = classes.get(key)
                if entry is None:
                    classes[key] = [count, entropy, identified]
                else:
                    entry[0] += count
            chunk_seconds = (telemetry.clock() - chunk_started) if timed else 0.0
            if autotuning:
                self._autotune_record(block_trials, chunk_seconds, telemetry)
            if telemetry.enabled:
                telemetry.counter("engine_chunks_total", engine=self.name).inc()
                telemetry.counter(
                    "engine_trials_total", engine=self.name
                ).inc(block_trials)
                telemetry.histogram(
                    "engine_chunk_seconds", engine=self.name
                ).observe(chunk_seconds)
                if chunk_seconds > 0.0:
                    telemetry.histogram(
                        "engine_trials_per_second",
                        buckets=DEFAULT_RATE_BUCKETS,
                        engine=self.name,
                    ).observe(block_trials / chunk_seconds)
        return BatchAccumulator(
            n_trials=n_trials,
            length_sum=length_sum,
            classes={key: tuple(value) for key, value in classes.items()},
        )

    def run(self, n_trials: int, rng: RandomSource = None) -> "MonteCarloReport":
        """Run ``n_trials`` trials and summarise into a ``MonteCarloReport``."""
        accumulator = self.run_accumulate(n_trials, rng=rng)
        return accumulator.report(self.model, self._distribution.name)


# ---------------------------------------------------------------------- #
# The simple-path engines                                                 #
# ---------------------------------------------------------------------- #


class FiveClassEngine(TrialEngine):
    """The paper's core domain: five symmetric classes, one closed form.

    One compromised node, compromised receiver, simple paths.  A trial is
    three integers (sender, length, compromised hop position or absent); one
    exact closed-form evaluation prices all five classes up front, so
    :meth:`score` is a table lookup.
    """

    name = "five-class"

    def __init__(
        self,
        model: SystemModel,
        strategy: PathSelectionStrategy,
        compromised: frozenset[int],
        use_numpy: bool | None = None,
    ) -> None:
        super().__init__(model, strategy, compromised, use_numpy)
        if not self.covers(model, strategy, self.compromised):
            raise ConfigurationError(
                "the five-class engine covers one compromised node with a "
                "compromised receiver on simple paths; got "
                f"C={len(self.compromised)} on {strategy.path_model.value} paths"
            )
        (self._compromised_node,) = self.compromised
        self._sampler = BatchTrialSampler(
            n_nodes=model.n_nodes,
            distribution=self._distribution,
            compromised_node=self._compromised_node,
        )
        # One exact closed-form evaluation yields the entropy and the
        # identification flag of every class; trials only index into it.
        analysis = AnonymityAnalyzer(
            model.with_compromised(1)
        ).analyze(self._distribution)
        entropies = []
        identified = set()
        for code, event_class in enumerate(EVENT_ORDER):
            summary = analysis.event(event_class)
            entropies.append(summary.entropy_bits)
            if summary.top_posterior >= IDENTIFIED_THRESHOLD:
                identified.add(code)
        self._entropy_by_code = tuple(entropies)
        self._identified_codes = frozenset(identified)
        # Hoisted out of classify(): the class codes *are* the histogram
        # indices (the encoding of EVENT_ORDER), so per-chunk classification
        # never needs to touch EventClass objects again.
        self._n_codes = len(EVENT_ORDER)

    @classmethod
    def covers(
        cls,
        model: SystemModel,
        strategy: PathSelectionStrategy,
        compromised: frozenset[int],
    ) -> bool:
        return (
            model.clique_routing
            and strategy.path_model is PathModel.SIMPLE
            and len(compromised) == 1
            and model.receiver_compromised
        )

    def sample_block(self, n_trials: int, generator: "np.random.Generator") -> Any:
        return self._sampler.draw(n_trials, generator, use_numpy=self.use_numpy)

    def classify(self, block: Any) -> dict[object, tuple[int, int | None]]:
        codes = classify_columns(
            block,
            self._compromised_node,
            adversary=self.model.adversary,
            use_numpy=self.use_numpy,
        )
        if resolve_use_numpy(self.use_numpy):
            import numpy as np

            histogram = np.bincount(
                np.frombuffer(codes, dtype=np.int8), minlength=self._n_codes
            )
            return {
                code: (int(count), None)
                for code, count in enumerate(histogram)
                if count
            }
        counts = class_counts(codes)
        return {
            code: (counts[cls], None)
            for code, cls in enumerate(EVENT_ORDER)
            if counts[cls]
        }

    def score(self, key: Any, block: Any, representative: int | None) -> tuple[float, bool]:
        return self._entropy_by_code[key], key in self._identified_codes

    def fused_accumulate(
        self, n_trials: int, generator: "np.random.Generator"
    ) -> tuple[int, dict[object, tuple[int, float, bool]]]:
        if not resolve_use_numpy(self.use_numpy):
            return super().fused_accumulate(n_trials, generator)
        from repro.batch.fused import fused_five_class_accumulate

        return fused_five_class_accumulate(self, n_trials, generator)


class ArrangementEngine(TrialEngine):
    """The general simple-path domain: ``(length, position-mask)`` classes.

    Any number of compromised nodes (including zero), honest receivers
    allowed.  Classes are priced lazily through the exact
    fragment-arrangement counts of :mod:`repro.combinatorics`
    (:class:`~repro.batch.multiclass.ClassScoreTable`).
    """

    name = "arrangement"

    def __init__(
        self,
        model: SystemModel,
        strategy: PathSelectionStrategy,
        compromised: frozenset[int],
        use_numpy: bool | None = None,
    ) -> None:
        super().__init__(model, strategy, compromised, use_numpy)
        if not self.covers(model, strategy, self.compromised):
            raise ConfigurationError(
                "the arrangement engine covers simple-path strategies; got "
                f"{strategy.path_model.value} paths"
            )
        self._sampler = MultiTrialSampler(
            n_nodes=model.n_nodes,
            distribution=self._distribution,
            n_compromised=len(self.compromised),
        )
        self._score_table = ClassScoreTable(
            model=model.with_compromised(len(self.compromised)),
            distribution=self._distribution,
            compromised=self.compromised,
        )

    @classmethod
    def covers(
        cls,
        model: SystemModel,
        strategy: PathSelectionStrategy,
        compromised: frozenset[int],
    ) -> bool:
        return model.clique_routing and strategy.path_model is PathModel.SIMPLE

    def sample_block(self, n_trials: int, generator: "np.random.Generator") -> Any:
        return self._sampler.draw(n_trials, generator, use_numpy=self.use_numpy)

    def classify(self, block: Any) -> dict[object, tuple[int, int | None]]:
        keyed = count_class_keys(block, self.compromised, use_numpy=self.use_numpy)
        return {key: (count, None) for key, count in keyed.items()}

    def score(self, key: Any, block: Any, representative: int | None) -> tuple[float, bool]:
        score = self._score_table.score(key)
        return score.entropy_bits, score.identified

    def fused_accumulate(
        self, n_trials: int, generator: "np.random.Generator"
    ) -> tuple[int, dict[object, tuple[int, float, bool]]]:
        if not resolve_use_numpy(self.use_numpy):
            return super().fused_accumulate(n_trials, generator)
        from repro.batch.fused import fused_arrangement_accumulate

        return fused_arrangement_accumulate(self, n_trials, generator)


# ---------------------------------------------------------------------- #
# Registry                                                                #
# ---------------------------------------------------------------------- #

_ENGINES: dict[str, Callable[..., TrialEngine]] = {}


def register_engine(
    name: str,
    engine: Callable[..., TrialEngine],
    overwrite: bool = False,
) -> None:
    """Register a trial engine under ``name``.

    This is the vectorized-pipeline counterpart of
    :func:`repro.batch.backends.register_backend`: a registered engine is
    eligible for every :class:`~repro.batch.estimator.BatchMonteCarlo` run —
    and therefore for the ``batch``/``sharded`` backends, the adaptive
    service, sweeps, and the CLI — without touching any call site.
    ``engine`` must be constructible as
    ``engine(model=..., strategy=..., compromised=..., use_numpy=...)`` and
    expose the :class:`TrialEngine` surface (the ``covers`` predicate plus
    ``run_accumulate``).  Later registrations take precedence on any domain
    they claim, so registering is also how the built-ins are overridden.

    The registry is process-local; the ``sharded`` backend resolves the
    engine in the *parent* and ships the class to its workers by pickle
    reference (see :class:`repro.batch.sharded.ShardTask`), so a registered
    engine's class must live in an importable module to shard — the standard
    constraint on any multiprocessing payload.
    """
    if name in _ENGINES and not overwrite:
        raise ConfigurationError(
            f"engine {name!r} is already registered; pass overwrite=True to replace it"
        )
    _ENGINES[name] = engine


def available_engines() -> tuple[str, ...]:
    """Registered engine names, in registration order."""
    return tuple(_ENGINES)


def get_engine(name: str) -> Callable[..., TrialEngine]:
    """The engine class registered under ``name``."""
    try:
        return _ENGINES[name]
    except KeyError:
        known = ", ".join(_ENGINES)
        raise ConfigurationError(
            f"unknown trial engine {name!r}; registered engines: {known}"
        ) from None


def select_engine(
    model: SystemModel,
    strategy: PathSelectionStrategy,
    compromised: frozenset[int] | set[int],
) -> Callable[..., TrialEngine]:
    """The engine class covering ``(model, strategy, compromised)``.

    Engines are consulted latest-registered first, so a user-registered
    engine preempts the built-ins on any configuration its ``covers``
    predicate claims.  Raises :class:`~repro.exceptions.ConfigurationError`
    when no registered engine covers the configuration.
    """
    compromised = frozenset(compromised)
    for name in reversed(_ENGINES):
        engine = _ENGINES[name]
        if engine.covers(model, strategy, compromised):
            logger.debug(
                "selected engine %r for %s, C=%d, %s paths",
                name,
                model.describe(),
                len(compromised),
                strategy.path_model.value,
            )
            return engine
    known = ", ".join(_ENGINES)
    raise ConfigurationError(
        f"no registered trial engine covers {model.describe()} with "
        f"C={len(compromised)} under strategy {strategy.name!r} "
        f"({strategy.path_model.value} paths); registered engines: {known}"
    )


# The built-ins register from most general to most specific: selection walks
# the registry in reverse, so the specialised five-class engine preempts the
# arrangement engine on the paper's core domain, and anything registered
# after these preempts both.
register_engine(ArrangementEngine.name, ArrangementEngine)
register_engine(FiveClassEngine.name, FiveClassEngine)
