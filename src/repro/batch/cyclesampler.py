"""Bulk sampling of cycle-allowed rerouting paths as hop columns.

The simple-path samplers (:mod:`repro.batch.sampler`) never materialise node
identities: symmetry reduces a simple-path trial to a handful of integers.
Cycle-allowed paths (Crowds, Onion Routing II, Hordes) resist that reduction —
the adversary's observation class depends on *coincidences* between hop
identities (whether the node the compromised node forwarded to later shows up
as another observed predecessor), so the sampler draws the hop sequences
themselves, as one columnar block of Markov-style transitions:

* senders are uniform over the ``N`` nodes;
* lengths come from the distribution's inverse-CDF bulk sampler;
* hop level ``h`` is drawn for *every* trial at once: one raw uniform column
  over ``[0, N-1)`` per level, decoded as "the raw value, skipping the node
  that currently holds the message" — exactly the uniform-over-``N-1``
  no-self-forwarding rule of
  :class:`~repro.routing.selection.CyclePathSelector`.

Levels beyond a trial's sampled length are still drawn and decoded (the chain
simply keeps walking); consumers mask them out by length.  This keeps the
generator consumption a fixed function of ``(n_trials, sampled lengths)``, so
the pure-Python and NumPy decoders are draw-for-draw identical and results
are deterministic under a fixed seed — the same contract the simple-path
samplers honour.
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass

from repro.batch._accel import resolve_use_numpy
from repro.batch.columns import int64_column
from repro.distributions.base import PathLengthDistribution
from repro.exceptions import ConfigurationError
from repro.utils.rng import RandomSource, ensure_rng

__all__ = ["CycleTrialColumns", "CycleTrialSampler"]


@dataclass(frozen=True)
class CycleTrialColumns:
    """A batch of cycle-path trials: senders, lengths, and a hop matrix.

    ``hops`` stores the row-major ``n_trials x width`` matrix of hop
    identities: ``hops[t * width + h]`` is the 1-based hop ``h + 1`` of trial
    ``t``.  ``width`` is the longest sampled length of the batch; cells at or
    beyond a trial's own length hold the chain's continuation and carry no
    meaning — every consumer masks by ``lengths``.
    """

    senders: array
    lengths: array
    hops: array
    width: int

    def __post_init__(self) -> None:
        if len(self.senders) != len(self.lengths):
            raise ConfigurationError(
                f"trial columns must have equal lengths, got "
                f"senders={len(self.senders)}, lengths={len(self.lengths)}"
            )
        if len(self.hops) != len(self.senders) * self.width:
            raise ConfigurationError(
                f"hop matrix holds {len(self.hops)} cells, expected "
                f"{len(self.senders)} x {self.width}"
            )

    def __len__(self) -> int:
        return len(self.senders)

    @property
    def n_trials(self) -> int:
        """Number of trials stored in the batch."""
        return len(self.senders)

    def as_numpy(self):
        """Zero-copy views ``(senders, lengths, hops_2d)``; requires numpy."""
        from repro.batch.columns import _numpy_views

        senders, lengths = _numpy_views(self.senders, self.lengths)
        if self.width:
            (flat,) = _numpy_views(self.hops)
            hops_2d = flat.reshape(len(self.senders), self.width)
        else:
            import numpy as np

            hops_2d = np.empty((len(self.senders), 0), dtype=np.int64)
        return senders, lengths, hops_2d

    def path(self, index: int) -> tuple[int, ...]:
        """The concrete rerouting path of one trial (its first ``length`` hops)."""
        base = index * self.width
        return tuple(self.hops[base : base + self.lengths[index]])


@dataclass(frozen=True)
class CycleTrialSampler:
    """Draws batches of cycle-allowed trials as one columnar hop block.

    Parameters
    ----------
    n_nodes:
        System size ``N``.
    distribution:
        Path-length distribution to sample from.  Cycle paths have no
        feasibility cap, but the support must be finite (all in-tree
        distributions are, heavy tails being cut at negligible mass).
    """

    n_nodes: int
    distribution: PathLengthDistribution

    def __post_init__(self) -> None:
        if self.n_nodes < 2:
            raise ConfigurationError(
                f"batch sampling needs at least 2 nodes, got n_nodes={self.n_nodes}"
            )

    def draw(
        self,
        n_trials: int,
        rng: RandomSource = None,
        use_numpy: bool | None = None,
    ) -> CycleTrialColumns:
        """Sample ``n_trials`` cycle-path trials as one columnar batch."""
        if n_trials < 1:
            raise ConfigurationError(f"n_trials must be >= 1, got {n_trials}")
        generator = ensure_rng(rng)
        accelerate = resolve_use_numpy(use_numpy)

        senders_raw = generator.integers(0, self.n_nodes, size=n_trials)
        lengths = self.distribution.sample_batch(n_trials, generator)
        width = max(lengths)
        # One raw column per hop level, drawn in level order: the raw value
        # r in [0, N-1) decodes to "r, skipping the current holder".
        raw_columns = [
            generator.integers(0, self.n_nodes - 1, size=n_trials)
            for _ in range(width)
        ]

        if accelerate:
            hops = self._decode_numpy(senders_raw, raw_columns, n_trials, width)
            senders = int64_column()
            import numpy as np

            senders.frombytes(senders_raw.astype(np.int64).tobytes())
        else:
            senders = int64_column(int(s) for s in senders_raw)
            hops = self._decode_pure(senders, raw_columns, n_trials, width)
        return CycleTrialColumns(
            senders=senders, lengths=lengths, hops=hops, width=width
        )

    # ------------------------------------------------------------------ #
    # Transition decoders (same semantics, tested against each other)     #
    # ------------------------------------------------------------------ #

    @staticmethod
    def _decode_numpy(senders_raw, raw_columns, n_trials: int, width: int) -> array:
        import numpy as np

        current = senders_raw.astype(np.int64)
        levels = np.empty((width, n_trials), dtype=np.int64)
        for h, raw in enumerate(raw_columns):
            step = raw.astype(np.int64)
            step += step >= current
            levels[h] = step
            current = step
        hops = int64_column()
        hops.frombytes(np.ascontiguousarray(levels.T).tobytes())
        return hops

    @staticmethod
    def _decode_pure(senders, raw_columns, n_trials: int, width: int) -> array:
        hops = int64_column(bytes(8 * n_trials * width))
        for t in range(n_trials):
            current = senders[t]
            base = t * width
            for h in range(width):
                step = int(raw_columns[h][t])
                if step >= current:
                    step += 1
                hops[base + h] = step
                current = step
        return hops
