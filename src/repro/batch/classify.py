"""Columnar classification of trials into the paper's five observation classes.

This is the classifier of the ``C = 1`` engine (one compromised node, the
paper's compromised receiver); the generalised ``(length, position-mask)``
classifier for any ``C`` lives in :mod:`repro.batch.multiclass`.  The scalar
rule lives in :func:`repro.core.events.classify_trial`; this module applies it
to whole :class:`~repro.batch.columns.TrialColumns` batches at once, producing
one small-integer code per trial (the encoding of
:data:`repro.core.events.EVENT_ORDER`).  Two implementations share the same
semantics and are tested against each other and against the scalar reference:

* the pure-Python path walks the columns once with branch-free-ish integer
  comparisons;
* the NumPy path builds the class codes from boolean masks with no Python
  loop at all.
"""

from __future__ import annotations

from array import array
from collections import Counter

from repro.batch._accel import resolve_use_numpy
from repro.batch.columns import ABSENT, TrialColumns
from repro.core.events import EVENT_ORDER, EventClass, event_code
from repro.core.model import AdversaryModel

__all__ = ["classify_columns", "class_counts"]

_ORIGIN = event_code(EventClass.ORIGIN)
_SILENT = event_code(EventClass.SILENT)
_LAST = event_code(EventClass.LAST)
_PENULTIMATE = event_code(EventClass.PENULTIMATE)
_INTERIOR = event_code(EventClass.INTERIOR)


def classify_columns(
    columns: TrialColumns,
    compromised_node: int,
    adversary: AdversaryModel = AdversaryModel.FULL_BAYES,
    use_numpy: bool | None = None,
) -> array:
    """Classify every trial of a batch, returning one code column (``array('b')``)."""
    if resolve_use_numpy(use_numpy):
        return _classify_numpy(columns, compromised_node, adversary)
    return _classify_pure(columns, compromised_node, adversary)


def class_counts(codes: array) -> dict[EventClass, int]:
    """Histogram of class codes, keyed by :class:`EventClass` (zeros included)."""
    counted = Counter(codes)
    return {cls: counted.get(code, 0) for code, cls in enumerate(EVENT_ORDER)}


# ---------------------------------------------------------------------- #
# Pure-Python kernel                                                      #
# ---------------------------------------------------------------------- #


def _classify_pure(
    columns: TrialColumns, compromised_node: int, adversary: AdversaryModel
) -> array:
    predecessor_only = adversary is AdversaryModel.PREDECESSOR_ONLY
    position_aware = adversary is AdversaryModel.POSITION_AWARE
    codes = array("b", bytes(len(columns)))
    for i, (sender, length, position) in enumerate(
        zip(columns.senders, columns.lengths, columns.positions)
    ):
        if sender == compromised_node:
            codes[i] = _ORIGIN
        elif position == ABSENT:
            codes[i] = _SILENT
        elif predecessor_only:
            codes[i] = _INTERIOR
        elif position_aware and position == 1:
            codes[i] = _ORIGIN
        elif position == length:
            codes[i] = _LAST
        elif position == length - 1:
            codes[i] = _PENULTIMATE
        else:
            codes[i] = _INTERIOR
    return codes


# ---------------------------------------------------------------------- #
# NumPy kernel                                                            #
# ---------------------------------------------------------------------- #


def _classify_numpy(
    columns: TrialColumns, compromised_node: int, adversary: AdversaryModel
) -> array:
    import numpy as np

    senders, lengths, positions = columns.as_numpy()
    on_path = positions != ABSENT

    # Build the code vector from the most general class down to the most
    # specific so later (more specific) masks overwrite earlier ones.  The
    # predecessor-only adversary stops at INTERIOR: it cannot distinguish
    # where on the path its node sat.
    codes = np.full(len(columns), _SILENT, dtype=np.int8)
    codes[on_path] = _INTERIOR
    if adversary is not AdversaryModel.PREDECESSOR_ONLY:
        codes[on_path & (positions == lengths - 1)] = _PENULTIMATE
        codes[on_path & (positions == lengths)] = _LAST
        if adversary is AdversaryModel.POSITION_AWARE:
            codes[on_path & (positions == 1)] = _ORIGIN
    codes[senders == compromised_node] = _ORIGIN

    out = array("b")
    out.frombytes(codes.tobytes())
    return out
