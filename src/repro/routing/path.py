"""Rerouting paths.

A :class:`ReroutingPath` is the object defined by equation (1) of the paper:
the sender, the ordered intermediate nodes, and (implicitly) the receiver.
The path length is the number of intermediate nodes.  The class knows how to
validate itself against a path model (simple vs. cycle-allowed) and a
topology, and how to answer the structural questions the analysis modules ask
("is node x on the path?", "who precedes position j?").
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.model import PathModel
from repro.exceptions import ConfigurationError
from repro.network.topology import Topology

__all__ = ["ReroutingPath"]


@dataclass(frozen=True)
class ReroutingPath:
    """One concrete rerouting path: sender plus ordered intermediate nodes."""

    sender: int
    intermediates: tuple[int, ...]

    def __post_init__(self) -> None:
        if self.intermediates and self.intermediates[0] == self.sender:
            raise ConfigurationError(
                "the first intermediate node must differ from the sender "
                "(paper, equation (1))"
            )
        for first, second in zip(self.intermediates, self.intermediates[1:]):
            if first == second:
                raise ConfigurationError(
                    "consecutive intermediate nodes must differ (no self-forwarding)"
                )

    # ------------------------------------------------------------------ #
    # Structure                                                           #
    # ------------------------------------------------------------------ #

    @property
    def length(self) -> int:
        """Path length = number of intermediate nodes (paper, Section 3.1)."""
        return len(self.intermediates)

    @property
    def is_simple(self) -> bool:
        """True when no node appears twice (sender included)."""
        nodes = (self.sender, *self.intermediates)
        return len(set(nodes)) == len(nodes)

    @property
    def follows_no_self_forwarding(self) -> bool:
        """True when no hop forwards the message to its current holder.

        This is the one structural rule of the cycle-allowed path model (the
        rule :class:`~repro.routing.selection.CyclePathSelector` enforces hop
        by hop): the first intermediate differs from the sender and no two
        consecutive intermediates coincide.
        """
        if self.intermediates and self.intermediates[0] == self.sender:
            return False
        return all(
            first != second
            for first, second in zip(self.intermediates, self.intermediates[1:])
        )

    @property
    def nodes_on_path(self) -> frozenset[int]:
        """All node identities appearing on the path (sender included)."""
        return frozenset((self.sender, *self.intermediates))

    def predecessor_of(self, position: int) -> int:
        """Node preceding the 1-based intermediate ``position`` (the sender for position 1)."""
        if not 1 <= position <= self.length:
            raise ConfigurationError(f"position {position} outside [1, {self.length}]")
        if position == 1:
            return self.sender
        return self.intermediates[position - 2]

    def successor_of(self, position: int) -> int | None:
        """Node following the 1-based ``position``, or ``None`` for the receiver."""
        if not 1 <= position <= self.length:
            raise ConfigurationError(f"position {position} outside [1, {self.length}]")
        if position == self.length:
            return None
        return self.intermediates[position]

    def positions_of(self, node: int) -> tuple[int, ...]:
        """1-based positions at which ``node`` appears as an intermediate."""
        return tuple(
            index + 1 for index, hop in enumerate(self.intermediates) if hop == node
        )

    # ------------------------------------------------------------------ #
    # Validation                                                          #
    # ------------------------------------------------------------------ #

    def conforms_to(self, path_model: PathModel) -> bool:
        """True when the path is legal under the given path model.

        The cycle-allowed check is real validation, not a constant: it
        re-verifies the no-self-forwarding rule so that validation agrees
        with :class:`~repro.routing.selection.CyclePathSelector` even for
        instances built around the constructor invariants (deserialisation,
        ``__new__``-based copies, future relaxations of ``__post_init__``).
        """
        if path_model is PathModel.SIMPLE:
            # A simple path has all-distinct nodes, which already implies the
            # no-self-forwarding rule.
            return self.is_simple
        return self.follows_no_self_forwarding

    def routable_on(self, topology: Topology) -> bool:
        """True when every consecutive hop is a direct link of the topology."""
        return topology.validate_path(self.sender, self.intermediates)
