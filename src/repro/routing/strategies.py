"""Path-selection strategies: a length distribution plus a node-selection rule.

This is the object the paper optimises: Figure 2's two-step algorithm
(1) draw a path length from a distribution, (2) draw the intermediate nodes.
A :class:`PathSelectionStrategy` bundles the two and is what protocols hand to
the simulator and what experiments hand to the analytical engines.

The module also provides the catalogue of strategies used by deployed systems
surveyed in Section 2 of the paper (Anonymizer, Freedom, PipeNet, Onion
Routing I and II, Crowds), so the extension experiments can rank real systems
by the anonymity degree their strategy achieves.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.model import PathModel
from repro.core.topology import Topology
from repro.distributions import (
    FixedLength,
    GeometricLength,
    PathLengthDistribution,
    TwoPointLength,
)
from repro.exceptions import ConfigurationError
from repro.routing.path import ReroutingPath
from repro.routing.selection import (
    NodeSelector,
    TopologySimplePathSelector,
    selector_for,
)
from repro.utils.rng import RandomSource, ensure_rng

__all__ = ["PathSelectionStrategy", "deployed_system_strategies"]

#: Bound on length redraws when a sampled length is infeasible for the sender
#: on a sparse topology; exceeding it means the sender has (almost) no
#: feasible length at all, which is a configuration error, not bad luck.
_MAX_LENGTH_REDRAWS = 10_000


@dataclass(frozen=True)
class PathSelectionStrategy:
    """A complete path-selection strategy (paper, Figure 2)."""

    name: str
    distribution: PathLengthDistribution
    path_model: PathModel = PathModel.SIMPLE

    def selector(self, n_nodes: int, topology: Topology | None = None) -> NodeSelector:
        """The node-selection rule for a system of ``n_nodes`` nodes.

        A non-clique ``topology`` swaps in the graph-restricted selectors of
        :mod:`repro.routing.selection`; ``None`` (or a clique) keeps the
        paper's clique rules and their exact draw sequence.
        """
        return selector_for(self.path_model, n_nodes, topology)

    def effective_distribution(self, n_nodes: int) -> PathLengthDistribution:
        """The length distribution actually realisable in a system of ``n_nodes`` nodes.

        Simple paths cap the length at ``n_nodes - 1``; heavy-tailed strategies
        (Crowds-style coin flipping) are truncated and renormalised, exactly as
        a real implementation would re-draw an infeasible length.
        """
        if self.path_model is PathModel.SIMPLE:
            cap = n_nodes - 1
            if self.distribution.max_length > cap:
                return self.distribution.truncated(cap)
        return self.distribution

    def build_path(
        self,
        sender: int,
        n_nodes: int,
        rng: RandomSource = None,
        topology: Topology | None = None,
    ) -> ReroutingPath:
        """Draw one rerouting path for ``sender`` in a system of ``n_nodes`` nodes.

        On a non-clique ``topology`` with simple paths, a sampled length may
        be infeasible for this particular sender; the length is then redrawn,
        which realises exactly the per-sender renormalised length law
        ``P(l) / Z_i`` that :class:`~repro.core.topology.TopologyPathLaw`
        assigns (each feasible length keeps its relative probability).
        """
        if not 0 <= sender < n_nodes:
            raise ConfigurationError(f"sender {sender} outside the node range [0, {n_nodes})")
        generator = ensure_rng(rng)
        distribution = self.effective_distribution(n_nodes)
        selector = self.selector(n_nodes, topology)
        length = distribution.sample(generator)
        if isinstance(selector, TopologySimplePathSelector):
            redraws = 0
            while not selector.feasible(sender, length):
                redraws += 1
                if redraws > _MAX_LENGTH_REDRAWS:
                    raise ConfigurationError(
                        f"no feasible simple-path length for sender {sender} on "
                        f"topology {topology.spec} after {_MAX_LENGTH_REDRAWS} "
                        f"redraws from {distribution.name}"
                    )
                length = distribution.sample(generator)
        return selector.select(sender, length, generator)

    def describe(self) -> str:
        """Readable one-liner used by reports and the CLI."""
        return f"{self.name}: L ~ {self.distribution.name}, {self.path_model.value} paths"


def deployed_system_strategies(include_cycle_variants: bool = False) -> dict[str, PathSelectionStrategy]:
    """Path-selection strategies of the systems surveyed in Section 2 of the paper.

    The returned mapping uses the system names as keys.  Strategies are the
    *length* strategies the systems document; the paper's point is precisely
    that several of them are not optimal.

    * **Anonymizer / LPWA** — a single proxy hop (fixed length 1).
    * **Freedom** — fixed length 3.
    * **PipeNet** — three or four intermediate nodes (modelled as a fair
      two-point distribution).
    * **Onion Routing I** — fixed length 5.
    * **Onion Routing II / Crowds** — hop-by-hop coin flipping, i.e. geometric
      lengths; Crowds' default forwarding probability is 3/4, and cycles are
      allowed.

    ``include_cycle_variants=True`` adds the cycle-allowed forms of the
    coin-flip systems (``crowds-cycles``, ``onion-routing-2-cycles``, and
    ``hordes`` — Shields & Levine's multicast-reply variant of Crowds), which
    the batch/sharded estimators and the estimation service handle through
    the cycle engine; the default catalogue keeps the simple-path length
    strategies the closed-form ranking of Section 2 evaluates.
    """
    strategies = {
        "anonymizer": PathSelectionStrategy("Anonymizer", FixedLength(1)),
        "lpwa": PathSelectionStrategy("LPWA", FixedLength(1)),
        "freedom": PathSelectionStrategy("Freedom", FixedLength(3)),
        "pipenet": PathSelectionStrategy("PipeNet", TwoPointLength(3, 4, 0.5)),
        "onion-routing-1": PathSelectionStrategy("Onion Routing I", FixedLength(5)),
        "onion-routing-2": PathSelectionStrategy(
            "Onion Routing II", GeometricLength(p_forward=0.5, minimum=1)
        ),
        "crowds": PathSelectionStrategy(
            "Crowds", GeometricLength(p_forward=0.75, minimum=1)
        ),
    }
    if include_cycle_variants:
        strategies["crowds-cycles"] = PathSelectionStrategy(
            "Crowds (cycle paths)",
            GeometricLength(p_forward=0.75, minimum=1),
            path_model=PathModel.CYCLE_ALLOWED,
        )
        strategies["onion-routing-2-cycles"] = PathSelectionStrategy(
            "Onion Routing II (cycle paths)",
            GeometricLength(p_forward=0.5, minimum=1),
            path_model=PathModel.CYCLE_ALLOWED,
        )
        # Hordes borrows Crowds' coin-flip forward path verbatim (replies go
        # over multicast, which the sender-anonymity metric never sees), so
        # its strategy is the cycle-allowed geometric walk.
        strategies["hordes"] = PathSelectionStrategy(
            "Hordes",
            GeometricLength(p_forward=0.75, minimum=1),
            path_model=PathModel.CYCLE_ALLOWED,
        )
    return strategies
