"""Rerouting substrate: paths, node selection, and path-selection strategies."""

from repro.routing.path import ReroutingPath
from repro.routing.selection import (
    CyclePathSelector,
    NodeSelector,
    SimplePathSelector,
    selector_for,
)
from repro.routing.strategies import PathSelectionStrategy, deployed_system_strategies

__all__ = [
    "ReroutingPath",
    "NodeSelector",
    "SimplePathSelector",
    "CyclePathSelector",
    "selector_for",
    "PathSelectionStrategy",
    "deployed_system_strategies",
]
