"""Intermediate-node selection rules.

Step 2 of the paper's path-selection framework (Figure 2): once the path
length has been drawn, choose the sequence of intermediate nodes.  On a clique
the paper treats this step as straightforward — pick uniformly at random —
but the two path models still differ in whether a node may appear twice:

* :class:`SimplePathSelector` draws an ordered sample of distinct nodes
  (Onion Routing I, Freedom: no cycles);
* :class:`CyclePathSelector` chooses hop by hop, never forwarding a message to
  the node that currently holds it but otherwise allowing revisits, including
  of the sender (Crowds, Onion Routing II, Hordes).

On a restricted topology (:class:`~repro.core.topology.Topology`) the same
two rules generalise: :class:`TopologyCyclePathSelector` forwards hop by hop
to a uniformly chosen *neighbour* of the current holder (the row-normalised
transition matrix of the graph), and :class:`TopologySimplePathSelector`
draws uniformly among the simple paths of the requested length starting at
the sender.  A requested length can be infeasible for a particular sender on
a sparse graph; :meth:`TopologySimplePathSelector.feasible` lets the strategy
redraw the length, which realises exactly the per-sender renormalised law of
:class:`~repro.core.topology.TopologyPathLaw`.

All selectors produce exactly the distributions assumed by the analytical
engines; this equivalence is what lets the Monte-Carlo experiments validate
the closed forms and the topology class tables.
"""

from __future__ import annotations

import abc
from functools import lru_cache

import numpy as np

from repro.core.model import PathModel
from repro.core.topology import Topology
from repro.exceptions import ConfigurationError
from repro.routing.path import ReroutingPath
from repro.utils.rng import RandomSource, ensure_rng

__all__ = [
    "NodeSelector",
    "SimplePathSelector",
    "CyclePathSelector",
    "TopologySimplePathSelector",
    "TopologyCyclePathSelector",
    "selector_for",
]


class NodeSelector(abc.ABC):
    """Strategy for drawing the intermediate nodes of one rerouting path."""

    def __init__(self, n_nodes: int) -> None:
        if n_nodes < 2:
            raise ConfigurationError("node selection requires at least 2 nodes")
        self._n_nodes = n_nodes

    @property
    def n_nodes(self) -> int:
        """Number of nodes available for selection."""
        return self._n_nodes

    @property
    @abc.abstractmethod
    def path_model(self) -> PathModel:
        """Which path model this selector realises."""

    @abc.abstractmethod
    def select(self, sender: int, length: int, rng: RandomSource = None) -> ReroutingPath:
        """Draw a path of exactly ``length`` intermediate nodes for ``sender``."""

    def max_length(self) -> int | None:
        """Longest supported path length (``None`` when unbounded)."""
        return None


class SimplePathSelector(NodeSelector):
    """Ordered uniform sample of distinct intermediate nodes (no cycles)."""

    @property
    def path_model(self) -> PathModel:
        return PathModel.SIMPLE

    def max_length(self) -> int | None:
        return self._n_nodes - 1

    def select(self, sender: int, length: int, rng: RandomSource = None) -> ReroutingPath:
        if length > self._n_nodes - 1:
            raise ConfigurationError(
                f"a simple path cannot have {length} intermediates with only "
                f"{self._n_nodes} nodes"
            )
        generator = ensure_rng(rng)
        others = np.array([node for node in range(self._n_nodes) if node != sender])
        if length == 0:
            return ReroutingPath(sender=sender, intermediates=())
        chosen = generator.choice(others, size=length, replace=False)
        return ReroutingPath(sender=sender, intermediates=tuple(int(n) for n in chosen))


class CyclePathSelector(NodeSelector):
    """Hop-by-hop uniform selection allowing revisits (Crowds-style paths)."""

    @property
    def path_model(self) -> PathModel:
        return PathModel.CYCLE_ALLOWED

    def select(self, sender: int, length: int, rng: RandomSource = None) -> ReroutingPath:
        generator = ensure_rng(rng)
        intermediates: list[int] = []
        current = sender
        for _ in range(length):
            candidates = [node for node in range(self._n_nodes) if node != current]
            current = int(generator.choice(candidates))
            intermediates.append(current)
        return ReroutingPath(sender=sender, intermediates=tuple(intermediates))


class TopologySimplePathSelector(NodeSelector):
    """Uniform draw among the topology's simple paths of the requested length.

    Path enumerations are cached per ``(sender, length)``; because selectors
    for one topology are shared through :func:`selector_for`'s cache, the
    enumeration cost is paid once per configuration, not once per trial.
    """

    def __init__(self, topology: Topology) -> None:
        super().__init__(topology.n_nodes)
        self._topology = topology
        self._paths: dict[tuple[int, int], tuple[tuple[int, ...], ...]] = {}

    @property
    def topology(self) -> Topology:
        """The graph the paths are drawn on."""
        return self._topology

    @property
    def path_model(self) -> PathModel:
        return PathModel.SIMPLE

    def max_length(self) -> int | None:
        return self._n_nodes - 1

    def _enumerate(self, sender: int, length: int) -> tuple[tuple[int, ...], ...]:
        key = (sender, length)
        paths = self._paths.get(key)
        if paths is None:
            paths = self._topology.simple_paths(sender, length)
            self._paths[key] = paths
        return paths

    def feasible(self, sender: int, length: int) -> bool:
        """True when at least one simple path of this length starts at ``sender``."""
        if length > self._n_nodes - 1:
            return False
        return bool(self._enumerate(sender, length))

    def select(self, sender: int, length: int, rng: RandomSource = None) -> ReroutingPath:
        paths = self._enumerate(sender, length)
        if not paths:
            raise ConfigurationError(
                f"no simple path of length {length} starts at node {sender} on "
                f"topology {self._topology.spec}; redraw the length "
                "(see PathSelectionStrategy.build_path)"
            )
        generator = ensure_rng(rng)
        index = int(generator.integers(0, len(paths)))
        return ReroutingPath(sender=sender, intermediates=paths[index])


class TopologyCyclePathSelector(NodeSelector):
    """Hop-by-hop uniform choice among the current holder's neighbours.

    This is the row-normalised transition matrix of the topology — the law
    the cycle-path class tables and the ``topology`` batch engine price
    classes under.  On a clique it coincides with :class:`CyclePathSelector`.
    """

    def __init__(self, topology: Topology) -> None:
        super().__init__(topology.n_nodes)
        self._topology = topology
        self._neighbors = tuple(
            topology.neighbors(node) for node in range(topology.n_nodes)
        )

    @property
    def topology(self) -> Topology:
        """The graph the walk runs on."""
        return self._topology

    @property
    def path_model(self) -> PathModel:
        return PathModel.CYCLE_ALLOWED

    def select(self, sender: int, length: int, rng: RandomSource = None) -> ReroutingPath:
        generator = ensure_rng(rng)
        intermediates: list[int] = []
        current = sender
        for _ in range(length):
            neighbors = self._neighbors[current]
            current = neighbors[int(generator.integers(0, len(neighbors)))]
            intermediates.append(current)
        return ReroutingPath(sender=sender, intermediates=tuple(intermediates))


@lru_cache(maxsize=64)
def _topology_selector(path_model: PathModel, topology: Topology) -> NodeSelector:
    if path_model is PathModel.SIMPLE:
        return TopologySimplePathSelector(topology)
    return TopologyCyclePathSelector(topology)


def selector_for(
    path_model: PathModel, n_nodes: int, topology: Topology | None = None
) -> NodeSelector:
    """Factory mapping a :class:`PathModel` to its selector implementation.

    ``topology=None`` (or a clique) keeps the paper's clique selectors and
    their exact draw sequence; a non-clique topology returns a shared,
    cached graph selector so path enumerations amortise across trials.
    """
    if topology is not None and topology.n_nodes != n_nodes:
        raise ConfigurationError(
            f"topology {topology.spec} has {topology.n_nodes} nodes but the "
            f"selector was asked for n_nodes={n_nodes}"
        )
    if topology is not None and not topology.is_clique:
        if path_model not in (PathModel.SIMPLE, PathModel.CYCLE_ALLOWED):
            raise ConfigurationError(f"unknown path model {path_model!r}")
        return _topology_selector(path_model, topology)
    if path_model is PathModel.SIMPLE:
        return SimplePathSelector(n_nodes)
    if path_model is PathModel.CYCLE_ALLOWED:
        return CyclePathSelector(n_nodes)
    raise ConfigurationError(f"unknown path model {path_model!r}")
