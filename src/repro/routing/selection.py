"""Intermediate-node selection rules.

Step 2 of the paper's path-selection framework (Figure 2): once the path
length has been drawn, choose the sequence of intermediate nodes.  On a clique
the paper treats this step as straightforward — pick uniformly at random —
but the two path models still differ in whether a node may appear twice:

* :class:`SimplePathSelector` draws an ordered sample of distinct nodes
  (Onion Routing I, Freedom: no cycles);
* :class:`CyclePathSelector` chooses hop by hop, never forwarding a message to
  the node that currently holds it but otherwise allowing revisits, including
  of the sender (Crowds, Onion Routing II, Hordes).

Both selectors produce exactly the distributions assumed by the analytical
engines; this equivalence is what lets the Monte-Carlo experiments validate
the closed forms.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.core.model import PathModel
from repro.exceptions import ConfigurationError
from repro.routing.path import ReroutingPath
from repro.utils.rng import RandomSource, ensure_rng

__all__ = ["NodeSelector", "SimplePathSelector", "CyclePathSelector", "selector_for"]


class NodeSelector(abc.ABC):
    """Strategy for drawing the intermediate nodes of one rerouting path."""

    def __init__(self, n_nodes: int) -> None:
        if n_nodes < 2:
            raise ConfigurationError("node selection requires at least 2 nodes")
        self._n_nodes = n_nodes

    @property
    def n_nodes(self) -> int:
        """Number of nodes available for selection."""
        return self._n_nodes

    @property
    @abc.abstractmethod
    def path_model(self) -> PathModel:
        """Which path model this selector realises."""

    @abc.abstractmethod
    def select(self, sender: int, length: int, rng: RandomSource = None) -> ReroutingPath:
        """Draw a path of exactly ``length`` intermediate nodes for ``sender``."""

    def max_length(self) -> int | None:
        """Longest supported path length (``None`` when unbounded)."""
        return None


class SimplePathSelector(NodeSelector):
    """Ordered uniform sample of distinct intermediate nodes (no cycles)."""

    @property
    def path_model(self) -> PathModel:
        return PathModel.SIMPLE

    def max_length(self) -> int | None:
        return self._n_nodes - 1

    def select(self, sender: int, length: int, rng: RandomSource = None) -> ReroutingPath:
        if length > self._n_nodes - 1:
            raise ConfigurationError(
                f"a simple path cannot have {length} intermediates with only "
                f"{self._n_nodes} nodes"
            )
        generator = ensure_rng(rng)
        others = np.array([node for node in range(self._n_nodes) if node != sender])
        if length == 0:
            return ReroutingPath(sender=sender, intermediates=())
        chosen = generator.choice(others, size=length, replace=False)
        return ReroutingPath(sender=sender, intermediates=tuple(int(n) for n in chosen))


class CyclePathSelector(NodeSelector):
    """Hop-by-hop uniform selection allowing revisits (Crowds-style paths)."""

    @property
    def path_model(self) -> PathModel:
        return PathModel.CYCLE_ALLOWED

    def select(self, sender: int, length: int, rng: RandomSource = None) -> ReroutingPath:
        generator = ensure_rng(rng)
        intermediates: list[int] = []
        current = sender
        for _ in range(length):
            candidates = [node for node in range(self._n_nodes) if node != current]
            current = int(generator.choice(candidates))
            intermediates.append(current)
        return ReroutingPath(sender=sender, intermediates=tuple(intermediates))


def selector_for(path_model: PathModel, n_nodes: int) -> NodeSelector:
    """Factory mapping a :class:`PathModel` to its selector implementation."""
    if path_model is PathModel.SIMPLE:
        return SimplePathSelector(n_nodes)
    if path_model is PathModel.CYCLE_ALLOWED:
        return CyclePathSelector(n_nodes)
    raise ConfigurationError(f"unknown path model {path_model!r}")
