"""Shared plumbing for the per-figure experiment modules.

Each experiment module regenerates the data behind one figure of the paper
(or one extension study) and returns an :class:`ExperimentData` object: the
sweep itself, the paper's qualitative claims about it expressed as named
boolean checks, and a handful of headline numbers.  Benchmarks print the data
and assert the checks; EXPERIMENTS.md records the headline numbers next to the
values read off the paper's figures.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.report import render_key_points, render_sweep
from repro.analysis.sweep import SweepResult

__all__ = ["ExperimentData", "PAPER_N_NODES", "PAPER_N_COMPROMISED"]

#: The system size used throughout the paper's numerical section (Figures 3-6).
PAPER_N_NODES = 100
#: The number of compromised nodes used throughout the paper's numerical section.
PAPER_N_COMPROMISED = 1


@dataclass(frozen=True)
class ExperimentData:
    """Result bundle for one reproduced figure or extension study."""

    #: Experiment identifier, e.g. ``"fig3a"``.
    experiment_id: str
    #: Human-readable title, e.g. ``"Figure 3(a): anonymity degree vs path length"``.
    title: str
    #: The regenerated data series.
    sweep: SweepResult
    #: Qualitative claims of the paper evaluated on the regenerated data.
    checks: dict[str, bool] = field(default_factory=dict)
    #: Headline numbers worth recording in EXPERIMENTS.md.
    key_points: dict[str, object] = field(default_factory=dict)

    @property
    def all_checks_pass(self) -> bool:
        """True when every recorded qualitative claim holds on our data."""
        return all(self.checks.values())

    def render(self, precision: int = 4) -> str:
        """Full text rendering: data table, key points, and check outcomes."""
        parts = [render_sweep(self.sweep, title=self.title, precision=precision)]
        if self.key_points:
            parts.append(render_key_points(self.key_points, title="Key points"))
        if self.checks:
            check_rows = {name: ("PASS" if ok else "FAIL") for name, ok in self.checks.items()}
            parts.append(render_key_points(check_rows, title="Qualitative checks"))
        return "\n\n".join(parts)
