"""Figure 5: effect of the path-length *variance* at equal expectation.

The paper compares strategies that share the same expected path length ``L``
but differ in variance: the fixed strategy ``F(L)`` (zero variance) against
uniform strategies ``U(a, 2L - a)`` (variance growing as ``a`` decreases).
Panels (a)–(c) show that once the lower bound is at least moderately large the
curves essentially coincide — the degree is determined by the expectation —
while panel (d) shows that for small expectations the variance matters and the
ordering is ``U(1, 2L-1) < U(2, 2L-2) < U(6, 2L-6) ≲ F(L)``-ish, i.e. spreading
mass onto very short paths is harmful.
"""

from __future__ import annotations

import math

from repro.analysis.sweep import uniform_mean_sweep
from repro.core.model import SystemModel
from repro.experiments.base import PAPER_N_COMPROMISED, PAPER_N_NODES, ExperimentData

__all__ = ["figure5a", "figure5b", "figure5c", "figure5d"]


def _max_gap(series_a, series_b) -> float:
    gaps = [
        abs(a - b)
        for a, b in zip(series_a, series_b)
        if not (math.isnan(a) or math.isnan(b))
    ]
    return max(gaps) if gaps else float("nan")


def _panel(
    experiment_id: str,
    lower_bounds: list[int],
    means: list[int],
    n_nodes: int,
    n_compromised: int,
    coincide_tolerance: float | None,
) -> ExperimentData:
    model = SystemModel(n_nodes=n_nodes, n_compromised=n_compromised)
    sweep = uniform_mean_sweep(model, lower_bounds, means, include_fixed=True)
    by_label = sweep.as_dict()
    fixed = by_label["F(L)"]
    checks = {}
    key_points = {}
    for label, values in by_label.items():
        if label == "F(L)":
            continue
        gap = _max_gap(fixed, values)
        key_points[f"max |{label} - F(L)|"] = round(gap, 5)
        if coincide_tolerance is not None:
            checks[f"{label} coincides with F(L) within {coincide_tolerance} bits"] = (
                gap <= coincide_tolerance
            )
    title = (
        f"Figure 5 panel {experiment_id[-1]}: fixed vs uniform at equal expectation, "
        f"lower bounds {lower_bounds} (N={n_nodes}, C={n_compromised})"
    )
    return ExperimentData(experiment_id, title, sweep, checks, key_points)


def figure5a(
    n_nodes: int = PAPER_N_NODES, n_compromised: int = PAPER_N_COMPROMISED
) -> ExperimentData:
    """Panel (a): lower bounds 4, 6, 10 — curves overlay the fixed strategy."""
    means = list(range(5, 50, 3))
    return _panel("fig5a", [4, 6, 10], means, n_nodes, n_compromised, coincide_tolerance=0.02)


def figure5b(
    n_nodes: int = PAPER_N_NODES, n_compromised: int = PAPER_N_COMPROMISED
) -> ExperimentData:
    """Panel (b): lower bounds 25, 40 — curves overlay the fixed strategy."""
    means = list(range(26, 75, 4))
    return _panel("fig5b", [25, 40], means, n_nodes, n_compromised, coincide_tolerance=0.02)


def figure5c(
    n_nodes: int = PAPER_N_NODES, n_compromised: int = PAPER_N_COMPROMISED
) -> ExperimentData:
    """Panel (c): lower bounds 51, 70 — curves overlay the fixed strategy."""
    means = list(range(52, 92, 4))
    return _panel("fig5c", [51, 70], means, n_nodes, n_compromised, coincide_tolerance=0.02)


def figure5d(
    n_nodes: int = PAPER_N_NODES, n_compromised: int = PAPER_N_COMPROMISED
) -> ExperimentData:
    """Panel (d): small lower bounds — the variance matters at small expectations."""
    means = list(range(2, 50, 3))
    data = _panel("fig5d", [1, 2, 6], means, n_nodes, n_compromised, coincide_tolerance=None)
    by_label = data.sweep.as_dict()
    fixed = by_label["F(L)"]
    u1 = by_label["U(1, 2L-1)"]
    u6 = by_label["U(6, 2L-6)"]

    # Compare at a small expectation present in every series (the first mean
    # for which U(6, 2L-6) is feasible, i.e. L >= 6).
    index = next(
        i
        for i, mean in enumerate(data.sweep.x_values)
        if mean >= 6 and not math.isnan(u6[i])
    )
    checks = dict(data.checks)
    # The paper's claim is that at small expectations the *variance* of the
    # length distribution matters, unlike in panels (a)-(c): strategies whose
    # support reaches down to very short paths behave measurably differently
    # from the fixed strategy of the same mean, while U(6, 2L-6) still
    # coincides with F(L).  (The paper additionally reports the ordering
    # U(1, ...) < U(6, ...); under the re-derived posterior model the ordering
    # is reversed — see EXPERIMENTS.md — but the "variance matters" phenomenon
    # itself is reproduced.)
    checks["at small expectations U(1, 2L-1) deviates from F(L) more than U(6, 2L-6) does"] = (
        abs(u1[index] - fixed[index]) > abs(u6[index] - fixed[index]) + 1e-6
    )
    checks["at small expectations the wide-variance strategy differs from F(L)"] = (
        abs(u1[index] - fixed[index]) > 1e-4
    )
    checks["U(6, 2L-6) still coincides with F(L) at the same expectation"] = (
        abs(u6[index] - fixed[index]) < 1e-3
    )
    key_points = dict(data.key_points)
    key_points["comparison expectation L"] = data.sweep.x_values[index]
    key_points["H* of U(1, 2L-1) at that L"] = round(u1[index], 4)
    key_points["H* of U(6, 2L-6) at that L"] = round(u6[index], 4)
    key_points["H* of F(L) at that L"] = round(fixed[index], 4)
    key_points["observed ordering at that L"] = (
        "U(1,2L-1) > U(2,2L-2) > U(6,2L-6) = F(L)"
        if u1[index] > u6[index]
        else "U(1,2L-1) < U(2,2L-2) < U(6,2L-6) = F(L)"
    )
    return ExperimentData(data.experiment_id, data.title, data.sweep, checks, key_points)
