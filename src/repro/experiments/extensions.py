"""Extension experiments beyond the paper's figures.

The paper's numerical section fixes one compromised node and a full-Bayes
adversary.  The machinery built for the reproduction supports much more, and
these experiments exercise it:

* ``compromised_sweep`` — how the optimal fixed path length and the achievable
  anonymity degree degrade as more nodes are compromised (exact, by
  exhaustive enumeration on a small system, plus Monte-Carlo on a large one);
* ``adversary_ablation`` — the same strategies under the three adversary
  models (full-Bayes, position-aware, predecessor-only);
* ``protocol_comparison`` — ranking of the deployed systems surveyed in
  Section 2 by the anonymity degree of their path-length strategies;
* ``simulation_validation`` — the discrete-event simulator (real protocols,
  real onion envelopes, real adversary agents) reproduces the closed-form
  anonymity degree within Monte-Carlo confidence intervals;
* ``predecessor_attack_rounds`` — how quickly repeated path formation (the
  predecessor attack of Wright et al., the paper's reference [23]) erodes the
  single-message anonymity of a Crowds-style system;
* ``batch_validation`` — the vectorized columnar estimator (the ``batch``
  backend of :mod:`repro.batch`) reproduces the closed form within its
  confidence interval across the distribution families of the paper;
* ``sharded_validation`` — the multiprocess ``sharded`` backend reproduces
  the closed form (C=1), is bit-deterministic for a fixed ``(seed, shards)``
  pair, and its multi-compromised arrangement-class engine reproduces the
  exhaustive ground truth at C=2;
* ``adaptive_validation`` — the estimation service (:mod:`repro.service`)
  reaches a target CI half-width with measurably fewer trials than the fixed
  reference budget, deterministically per ``(seed, block_size)``, and serves
  a repeated identical request bit-identically from its result cache;
* ``cycle_validation`` — the vectorized cycle engines (Crowds-style
  cycle-allowed paths on the ``batch``/``sharded`` fast path) reproduce the
  exhaustive ground truth and the hop-by-hop event engine under all three
  adversary models, are bit-deterministic per ``(seed, shards)``, and
  round-trip a cycle request bit-identically through the service cache —
  at ``C = 1`` (the dedicated kernel) *and* at ``C = 2`` (the multi-node
  ``cycle-multi`` engine that closed the roadmap's last coverage gap);
* ``topology_validation`` — anonymity versus connectivity on restricted
  graphs: the exact degree across clique/grid/ring/star/two-zone topologies,
  cut-vertex sensitivity as bridges are added between two zones, the
  ``topology`` batch engine's exact class table agreeing with exhaustive
  enumeration to ``1e-10``, bit-determinism per ``(seed, shards)``, and a
  topology request round-tripping through the service cache while clique
  requests keep their pre-topology digests.
"""

from __future__ import annotations

from repro.adversary.attacks import PredecessorAttack
from repro.analysis.compare import compare_deployed_systems
from repro.analysis.sweep import SweepResult, SweepSeries
from repro.batch.backends import estimate_anonymity
from repro.core.anonymity import AnonymityAnalyzer
from repro.core.enumeration import ExhaustiveAnalyzer
from repro.core.model import AdversaryModel, PathModel, SystemModel
from repro.core.optimizer import best_fixed_length
from repro.distributions import (
    FixedLength,
    GeometricLength,
    TwoPointLength,
    UniformLength,
)
from repro.experiments.base import PAPER_N_COMPROMISED, PAPER_N_NODES, ExperimentData
from repro.protocols import CrowdsProtocol, FreedomProtocol, OnionRoutingI
from repro.routing.strategies import (
    PathSelectionStrategy,
    deployed_system_strategies,
)
from repro.simulation.engine import AnonymousCommunicationSystem
from repro.simulation.experiment import ProtocolMonteCarlo, StrategyMonteCarlo
from repro.utils.rng import ensure_rng, spawn_child_rng

__all__ = [
    "compromised_sweep",
    "adversary_ablation",
    "protocol_comparison",
    "simulation_validation",
    "predecessor_attack_rounds",
    "batch_validation",
    "sharded_validation",
    "adaptive_validation",
    "cycle_validation",
    "topology_validation",
]


def compromised_sweep(
    small_n: int = 8,
    large_n: int = 60,
    compromised_counts: tuple[int, ...] = (1, 2, 3),
    mc_trials: int = 1500,
    seed: int = 2002,
) -> ExperimentData:
    """Effect of the number of compromised nodes on the anonymity degree."""
    lengths = list(range(1, small_n))
    series = []
    for c in compromised_counts:
        exhaustive = ExhaustiveAnalyzer(SystemModel(n_nodes=small_n, n_compromised=c))
        values = [exhaustive.anonymity_degree(FixedLength(length)) for length in lengths]
        series.append(SweepSeries(f"exact N={small_n}, C={c}", tuple(values)))
    sweep = SweepResult(
        x_label="fixed path length l",
        x_values=tuple(float(length) for length in lengths),
        series=tuple(series),
    )

    # Monte-Carlo spot checks on a larger system for C=2 and C=3.
    rng = ensure_rng(seed)
    mc_points = {}
    for c in compromised_counts:
        if c == 1:
            continue
        model = SystemModel(n_nodes=large_n, n_compromised=c)
        strategy = deployed_system_strategies()["freedom"]
        report = StrategyMonteCarlo(model, strategy).run(mc_trials, rng=rng)
        mc_points[f"MC H* of F(3), N={large_n}, C={c}"] = round(report.degree_bits, 4)

    curves = {entry.label: entry.values for entry in series}
    first = curves[f"exact N={small_n}, C={compromised_counts[0]}"]
    last = curves[f"exact N={small_n}, C={compromised_counts[-1]}"]
    checks = {
        "more compromised nodes always reduce the anonymity degree": all(
            low <= high + 1e-12 for low, high in zip(last, first)
        ),
    }
    key_points = {
        f"best fixed length, C={c}": max(
            range(len(lengths)),
            key=lambda i, c=c: curves[f"exact N={small_n}, C={c}"][i],
        )
        + 1
        for c in compromised_counts
    }
    key_points.update(mc_points)
    return ExperimentData(
        "ext-c",
        f"Extension: effect of the number of compromised nodes (exact N={small_n})",
        sweep,
        checks,
        key_points,
    )


def adversary_ablation(
    n_nodes: int = PAPER_N_NODES, lengths: tuple[int, ...] = (1, 2, 3, 5, 10, 20, 40, 60, 80, 99)
) -> ExperimentData:
    """Anonymity degree of fixed-length strategies under the three adversary models."""
    series = []
    for adversary in AdversaryModel:
        model = SystemModel(
            n_nodes=n_nodes, n_compromised=PAPER_N_COMPROMISED, adversary=adversary
        )
        analyzer = AnonymityAnalyzer(model)
        values = [analyzer.anonymity_degree(FixedLength(length)) for length in lengths]
        series.append(SweepSeries(adversary.value, tuple(values)))
    sweep = SweepResult(
        x_label="fixed path length l",
        x_values=tuple(float(length) for length in lengths),
        series=tuple(series),
    )
    curves = {entry.label: entry.values for entry in series}
    checks = {
        "the position-aware adversary is at least as strong as full Bayes": all(
            pos <= full + 1e-9
            for pos, full in zip(
                curves[AdversaryModel.POSITION_AWARE.value],
                curves[AdversaryModel.FULL_BAYES.value],
            )
        ),
        "the predecessor-only adversary is at most as strong as full Bayes": all(
            weak >= full - 1e-9
            for weak, full in zip(
                curves[AdversaryModel.PREDECESSOR_ONLY.value],
                curves[AdversaryModel.FULL_BAYES.value],
            )
        ),
    }
    probe_index = len(lengths) // 2
    key_points = {
        f"H* gap full-Bayes vs position-aware at l={lengths[probe_index]}": round(
            curves[AdversaryModel.FULL_BAYES.value][probe_index]
            - curves[AdversaryModel.POSITION_AWARE.value][probe_index],
            4,
        ),
    }
    return ExperimentData(
        "ext-adv",
        f"Extension: adversary-model ablation (N={n_nodes}, C=1)",
        sweep,
        checks,
        key_points,
    )


def protocol_comparison(n_nodes: int = PAPER_N_NODES) -> ExperimentData:
    """Rank the deployed systems of Section 2 by the anonymity of their strategies."""
    model = SystemModel(n_nodes=n_nodes, n_compromised=PAPER_N_COMPROMISED)
    rows = compare_deployed_systems(model)
    scan = best_fixed_length(model)

    sweep = SweepResult(
        x_label="rank",
        x_values=tuple(float(i + 1) for i in range(len(rows))),
        series=(
            SweepSeries("H*(S) bits", tuple(row.degree_bits for row in rows)),
            SweepSeries("E[L]", tuple(row.expected_length for row in rows)),
        ),
    )
    by_name = {row.name: row for row in rows}
    checks = {
        "the bottom of the ranking is a short fixed-length strategy": (
            rows[-1].name in ("Anonymizer", "LPWA", "Freedom")
        ),
        "Onion Routing I (5 hops) beats Freedom (3 hops)": (
            by_name["Onion Routing I"].degree_bits >= by_name["Freedom"].degree_bits - 1e-12
        ),
        "no deployed system reaches the optimal fixed-length strategy": all(
            row.degree_bits <= scan.best_degree + 1e-9 for row in rows
        ),
        "every deployed system leaves measurable anonymity on the table": (
            scan.best_degree - rows[0].degree_bits > 1e-4
        ),
    }
    key_points = {
        "ranking (best to worst)": " > ".join(row.name for row in rows),
        "optimal fixed length for comparison": scan.best_length,
        "H* of the optimal fixed-length strategy": round(scan.best_degree, 4),
        "H* of the best deployed strategy": round(rows[0].degree_bits, 4),
    }
    return ExperimentData(
        "ext-proto",
        f"Extension: deployed-system strategies ranked by anonymity degree (N={n_nodes})",
        sweep,
        checks,
        key_points,
    )


def simulation_validation(
    n_nodes: int = 40,
    trials: int = 1200,
    seed: int = 77,
) -> ExperimentData:
    """The full discrete-event simulator reproduces the closed-form degrees."""
    model = SystemModel(n_nodes=n_nodes, n_compromised=PAPER_N_COMPROMISED)
    analyzer = AnonymityAnalyzer(model)
    rng = ensure_rng(seed)

    cases = {
        "Freedom (F(3))": (lambda: FreedomProtocol(n_nodes), FixedLength(3)),
        "Onion Routing I (F(5))": (lambda: OnionRoutingI(n_nodes), FixedLength(5)),
    }
    labels = []
    simulated = []
    exact = []
    within = []
    for label, (factory, distribution) in cases.items():
        report = ProtocolMonteCarlo(model, factory).run(trials, rng=rng)
        reference = analyzer.anonymity_degree(distribution)
        labels.append(label)
        simulated.append(report.degree_bits)
        exact.append(reference)
        within.append(report.estimate.contains(reference, slack=0.02))

    # Strategy-level sampling for a variable-length strategy.
    strategy = deployed_system_strategies()["pipenet"]
    report = StrategyMonteCarlo(model, strategy).run(trials, rng=rng)
    reference = analyzer.anonymity_degree(strategy.effective_distribution(n_nodes))
    labels.append("PipeNet (two-point)")
    simulated.append(report.degree_bits)
    exact.append(reference)
    within.append(report.estimate.contains(reference, slack=0.02))

    sweep = SweepResult(
        x_label="case index",
        x_values=tuple(float(i) for i in range(len(labels))),
        series=(
            SweepSeries("simulated H*", tuple(simulated)),
            SweepSeries("closed-form H*", tuple(exact)),
        ),
    )
    checks = {
        f"simulation matches the closed form for {label}": ok
        for label, ok in zip(labels, within)
    }
    key_points = {
        label: f"simulated {sim:.4f} vs exact {ref:.4f}"
        for label, sim, ref in zip(labels, simulated, exact)
    }
    return ExperimentData(
        "ext-sim",
        f"Extension: discrete-event simulation vs closed form (N={n_nodes}, {trials} trials)",
        sweep,
        checks,
        key_points,
    )


def predecessor_attack_rounds(
    n_nodes: int = 40,
    n_compromised: int = 4,
    rounds: int = 200,
    seed: int = 11,
) -> ExperimentData:
    """Repeated path formation against Crowds: the predecessor attack."""
    model = SystemModel(n_nodes=n_nodes, n_compromised=n_compromised)
    rng = ensure_rng(seed)
    system = AnonymousCommunicationSystem(
        model=model, protocol=CrowdsProtocol(n_nodes, p_forward=0.66)
    )
    true_sender = n_compromised + 1  # an honest node
    attack = PredecessorAttack()
    checkpoints = []
    scores = []
    correct = []
    for round_index in range(1, rounds + 1):
        outcome = system.send(true_sender, rng=rng)
        attack.ingest(outcome.observation)
        if round_index in (1, 5, 10, 25, 50, 100, rounds):
            checkpoints.append(round_index)
            scores.append(attack.score(true_sender))
            correct.append(float(attack.suspect() == true_sender))

    sweep = SweepResult(
        x_label="rounds observed",
        x_values=tuple(float(c) for c in checkpoints),
        series=(
            SweepSeries("score of the true sender", tuple(scores)),
            SweepSeries("attack currently names the true sender", tuple(correct)),
        ),
    )
    checks = {
        "after many rounds the predecessor attack identifies the true sender": (
            attack.suspect() == true_sender
        ),
        "the true sender's score grows with the number of rounds": scores[-1] >= scores[0],
    }
    key_points = {
        "true sender": true_sender,
        "suspect after all rounds": attack.suspect(),
        "score of the true sender after all rounds": round(attack.score(true_sender), 4),
    }
    return ExperimentData(
        "ext-pred",
        (
            "Extension: predecessor attack over repeated Crowds paths "
            f"(N={n_nodes}, C={n_compromised})"
        ),
        sweep,
        checks,
        key_points,
    )


def batch_validation(
    n_nodes: int = 40,
    trials: int = 20_000,
    seed: int = 2024,
) -> ExperimentData:
    """The vectorized batch backend reproduces the closed form for every family.

    For each distribution family of the paper (fixed, uniform, geometric /
    Crowds-style, two-point / PipeNet-style) the experiment compares the
    closed-form anonymity degree with the ``batch`` backend's estimate and
    checks that the 95% confidence interval covers the exact value — the same
    validation that ``simulation_validation`` performs for the hop-by-hop
    engine, at more than an order of magnitude more trials.
    """
    model = SystemModel(n_nodes=n_nodes, n_compromised=PAPER_N_COMPROMISED)
    analyzer = AnonymityAnalyzer(model)
    rng = ensure_rng(seed)

    cases = {
        "F(5)": FixedLength(5),
        "U(2, 8)": UniformLength(2, 8),
        "Geom(3/4)": GeometricLength(
            p_forward=0.75, minimum=1, max_length=n_nodes - 1
        ),
        "TwoPoint(3, 4)": TwoPointLength(3, 4, 0.5),
    }
    labels = []
    estimated = []
    exact = []
    within = []
    for label, distribution in cases.items():
        report = estimate_anonymity(
            model,
            distribution,
            n_trials=trials,
            rng=spawn_child_rng(rng),
            backend="batch",
        )
        reference = analyzer.anonymity_degree(distribution)
        labels.append(label)
        estimated.append(report.degree_bits)
        exact.append(reference)
        within.append(report.estimate.contains(reference, slack=0.01))

    sweep = SweepResult(
        x_label="case index",
        x_values=tuple(float(i) for i in range(len(labels))),
        series=(
            SweepSeries("batch-estimated H*", tuple(estimated)),
            SweepSeries("closed-form H*", tuple(exact)),
        ),
    )
    checks = {
        f"batch estimate matches the closed form for {label}": ok
        for label, ok in zip(labels, within)
    }
    key_points = {
        label: f"batch {est:.4f} vs exact {ref:.4f}"
        for label, est, ref in zip(labels, estimated, exact)
    }
    key_points["trials per case"] = trials
    return ExperimentData(
        "ext-batch",
        (
            "Extension: vectorized batch estimator vs closed form "
            f"(N={n_nodes}, {trials} trials)"
        ),
        sweep,
        checks,
        key_points,
    )


def sharded_validation(
    n_nodes: int = 40,
    trials: int = 20_000,
    shards: int = 4,
    seed: int = 2026,
    small_n: int = 8,
) -> ExperimentData:
    """The multiprocess ``sharded`` backend reproduces the reference engines.

    Three properties are validated:

    * **closed-form parity (C=1):** for the distribution families of the
      paper, the sharded estimate's 95% confidence interval covers the exact
      anonymity degree — the same contract ``batch_validation`` checks for
      the single-process engine;
    * **determinism:** for a fixed ``(seed, shards)`` pair the merged report
      is bit-identical run to run (the worker count only sizes the pool, so
      the experiment runs its shards inline and the numbers match any
      ``--workers`` setting);
    * **multi-compromised parity (C=2):** on a small system where exhaustive
      enumeration is exact ground truth, the arrangement-class engine's CI
      covers the enumerated degree.
    """
    model = SystemModel(n_nodes=n_nodes, n_compromised=PAPER_N_COMPROMISED)
    analyzer = AnonymityAnalyzer(model)
    rng = ensure_rng(seed)

    cases = {
        "F(5)": FixedLength(5),
        "U(2, 8)": UniformLength(2, 8),
        "Geom(3/4)": GeometricLength(p_forward=0.75, minimum=1, max_length=n_nodes - 1),
    }
    labels = []
    estimated = []
    exact = []
    within = []
    for label, distribution in cases.items():
        report = estimate_anonymity(
            model,
            distribution,
            n_trials=trials,
            rng=spawn_child_rng(rng),
            backend="sharded",
            workers=1,
            shards=shards,
        )
        reference = analyzer.anonymity_degree(distribution)
        labels.append(label)
        estimated.append(report.degree_bits)
        exact.append(reference)
        within.append(report.estimate.contains(reference, slack=0.01))

    first = estimate_anonymity(
        model, FixedLength(5), n_trials=trials, rng=seed,
        backend="sharded", workers=1, shards=shards,
    )
    second = estimate_anonymity(
        model, FixedLength(5), n_trials=trials, rng=seed,
        backend="sharded", workers=1, shards=shards,
    )

    multi_model = SystemModel(n_nodes=small_n, n_compromised=2)
    multi_distribution = UniformLength(1, 4)
    multi_exact = ExhaustiveAnalyzer(multi_model).anonymity_degree(multi_distribution)
    multi_report = estimate_anonymity(
        multi_model,
        multi_distribution,
        n_trials=trials,
        rng=spawn_child_rng(rng),
        backend="sharded",
        workers=1,
        shards=shards,
    )

    sweep = SweepResult(
        x_label="case index",
        x_values=tuple(float(i) for i in range(len(labels))),
        series=(
            SweepSeries("sharded-estimated H*", tuple(estimated)),
            SweepSeries("closed-form H*", tuple(exact)),
        ),
    )
    checks = {
        f"sharded estimate matches the closed form for {label}": ok
        for label, ok in zip(labels, within)
    }
    checks["fixed (seed, shards) reproduces the report bit-for-bit"] = (
        first.estimate == second.estimate
        and first.identification_rate == second.identification_rate
    )
    checks["C=2 estimate covers the exhaustive ground truth"] = (
        multi_report.estimate.contains(multi_exact, slack=0.01)
    )
    key_points = {
        label: f"sharded {est:.4f} vs exact {ref:.4f}"
        for label, est, ref in zip(labels, estimated, exact)
    }
    key_points["C=2 ground truth"] = (
        f"sharded {multi_report.degree_bits:.4f} vs exhaustive {multi_exact:.4f} "
        f"(N={small_n})"
    )
    key_points["shards"] = shards
    key_points["trials per case"] = trials
    return ExperimentData(
        "ext-shard",
        (
            "Extension: sharded multiprocess estimator vs closed form and "
            f"exhaustive enumeration (N={n_nodes}, {trials} trials, {shards} shards)"
        ),
        sweep,
        checks,
        key_points,
    )


def adaptive_validation(
    n_nodes: int = 50,
    low: int = 3,
    high: int = 8,
    precision: float = 0.01,
    block_size: int = 5_000,
    fixed_trials: int = 200_000,
    seed: int = 2027,
) -> ExperimentData:
    """The adaptive-precision service beats a fixed budget and caches exactly.

    The reference configuration of the service acceptance criterion — uniform
    path lengths on ``[low, high]``, ``N`` nodes, one compromised node — is
    estimated three ways:

    * **adaptively**, through :class:`repro.service.EstimationService` with a
      target 95% CI half-width of ``precision`` bits, which should stop well
      short of the fixed reference budget;
    * **again, identically**, which must be served from the service's
      content-addressed cache with a bit-identical report — and a fresh
      service (cold cache) must recompute exactly the same bits for the same
      ``(seed, block_size)``;
    * **with the fixed budget**, through the plain ``batch`` backend at
      ``fixed_trials`` trials, as the cost baseline.

    The sweep records the adaptive convergence trajectory: the CI half-width
    after each merged block against the cumulative trial count.
    """
    from repro.service import DistributionSpec, EstimateRequest, EstimationService

    model = SystemModel(n_nodes=n_nodes, n_compromised=PAPER_N_COMPROMISED)
    distribution = UniformLength(low, high)
    request = EstimateRequest(
        n_nodes=n_nodes,
        distribution=DistributionSpec.from_distribution(distribution),
        precision=precision,
        block_size=block_size,
        max_trials=fixed_trials,
        seed=seed,
    )

    with EstimationService() as service:
        cold = service.estimate(request)
        warm = service.estimate(request)
    with EstimationService() as fresh_service:
        recomputed = fresh_service.estimate(request)

    fixed = estimate_anonymity(
        model, distribution, n_trials=fixed_trials, rng=seed, backend="batch"
    )
    exact = AnonymityAnalyzer(model).anonymity_degree(distribution)

    trials_axis = tuple(float(n) for n, _ in cold.trajectory)
    sweep = SweepResult(
        x_label="cumulative trials",
        x_values=trials_axis,
        series=(
            SweepSeries(
                "95% CI half-width (bits)",
                tuple(width for _, width in cold.trajectory),
            ),
            SweepSeries("precision target", tuple(precision for _ in trials_axis)),
        ),
    )
    half_width = cold.trajectory[-1][1] if cold.trajectory else float("inf")
    checks = {
        "the adaptive run converges to the precision target": (
            cold.converged and half_width <= precision
        ),
        "adaptive stopping spends measurably fewer trials than the fixed budget": (
            cold.n_trials <= fixed_trials // 4
        ),
        "a repeated identical request is served from the cache bit-identically": (
            warm.from_cache and warm.report == cold.report
        ),
        "a fixed (seed, block_size) reproduces the report bit-for-bit": (
            not recomputed.from_cache and recomputed.report == cold.report
        ),
        "the adaptive 95% CI covers the closed-form anonymity degree": (
            cold.report.estimate.contains(exact, slack=0.01)
        ),
    }
    key_points = {
        "reference config": f"U({low}, {high}), N={n_nodes}, C=1",
        "precision target (CI half-width)": precision,
        "adaptive trials": cold.n_trials,
        "adaptive rounds": cold.rounds,
        "fixed budget": fixed_trials,
        "trials saved": f"{1.0 - cold.n_trials / fixed_trials:.1%}",
        "adaptive H*": f"{cold.degree_bits:.4f} ± {half_width:.4f}",
        "fixed-budget H*": str(fixed.estimate),
        "closed-form H*": round(exact, 5),
        "request digest": cold.digest[:16] + "…",
    }
    return ExperimentData(
        "ext-adaptive",
        (
            "Extension: adaptive-precision service vs fixed trial budget "
            f"(N={n_nodes}, target ±{precision:g} bits)"
        ),
        sweep,
        checks,
        key_points,
    )


def cycle_validation(
    small_n: int = 6,
    p_forward: float = 0.6,
    max_length: int = 7,
    batch_trials: int = 60_000,
    event_trials: int = 2_500,
    shards: int = 3,
    seed: int = 2028,
) -> ExperimentData:
    """The vectorized cycle engine reproduces the ground truth for Crowds-style paths.

    On a system small enough for exhaustive enumeration of every cycle-allowed
    path (the only pre-existing exact engine for this path model), a
    Crowds-style coin-flip strategy is validated four ways:

    * **exhaustive parity:** under each of the three adversary models the
      ``batch`` backend's 95% confidence interval covers the exhaustively
      enumerated anonymity degree;
    * **event-engine parity:** the hop-by-hop ``event`` engine — one exact
      cycle posterior per trial — agrees with the batch estimate within the
      combined Monte-Carlo confidence intervals;
    * **determinism:** the ``sharded`` backend reproduces the report
      bit-for-bit for a fixed ``(seed, shards)`` pair;
    * **service round-trip:** a cycle-allowed :class:`EstimateRequest` is
      answered adaptively, and repeating the identical request is served
      bit-identically from the content-addressed result cache;
    * **multiple compromised nodes:** the ``cycle-multi`` engine's estimate
      covers the exhaustive degree at ``C = 2`` under every adversary model
      and is bit-deterministic per ``(seed, shards)`` — the same guard rails
      the ``C = 1`` engine ships with.
    """
    from repro.service import DistributionSpec, EstimateRequest, EstimationService

    distribution = GeometricLength(
        p_forward=p_forward, minimum=1, max_length=max_length
    )
    strategy = PathSelectionStrategy(
        "Crowds-style walk", distribution, path_model=PathModel.CYCLE_ALLOWED
    )
    rng = ensure_rng(seed)

    labels = []
    exact = []
    batch_estimates = []
    event_estimates = []
    checks = {}
    for adversary in AdversaryModel:
        model = SystemModel(
            n_nodes=small_n, n_compromised=1, adversary=adversary
        )
        truth = ExhaustiveAnalyzer(
            model.with_path_model(PathModel.CYCLE_ALLOWED)
        ).anonymity_degree(distribution)
        batch_report = estimate_anonymity(
            model, strategy, n_trials=batch_trials,
            rng=spawn_child_rng(rng), backend="batch",
        )
        event_report = StrategyMonteCarlo(model, strategy).run(
            event_trials, rng=spawn_child_rng(rng)
        )
        labels.append(adversary.value)
        exact.append(truth)
        batch_estimates.append(batch_report.degree_bits)
        event_estimates.append(event_report.degree_bits)
        checks[f"batch CI covers the exhaustive degree ({adversary.value})"] = (
            batch_report.estimate.contains(truth, slack=0.01)
        )
        gap = abs(batch_report.degree_bits - event_report.degree_bits)
        tolerance = 3.0 * (
            batch_report.estimate.std_error + event_report.estimate.std_error
        )
        checks[f"batch agrees with the event engine ({adversary.value})"] = (
            gap <= tolerance
        )

    model = SystemModel(n_nodes=small_n, n_compromised=1)
    first = estimate_anonymity(
        model, strategy, n_trials=batch_trials, rng=seed,
        backend="sharded", workers=1, shards=shards,
    )
    second = estimate_anonymity(
        model, strategy, n_trials=batch_trials, rng=seed,
        backend="sharded", workers=1, shards=shards,
    )
    checks["a fixed (seed, shards) reproduces the cycle report bit-for-bit"] = (
        first.estimate == second.estimate
        and first.identification_rate == second.identification_rate
    )

    request = EstimateRequest(
        n_nodes=small_n,
        distribution=DistributionSpec.from_distribution(distribution),
        path_model=PathModel.CYCLE_ALLOWED.value,
        precision=0.02,
        block_size=10_000,
        max_trials=batch_trials,
        seed=seed,
    )
    with EstimationService() as service:
        cold = service.estimate(request)
        warm = service.estimate(request)
    checks["a repeated cycle request is served from the cache bit-identically"] = (
        not cold.from_cache and warm.from_cache and warm.report == cold.report
    )

    # The C > 1 leg: the cycle-multi engine is guarded exactly like C = 1.
    multi_trials = batch_trials // 2
    multi_points: dict[str, str] = {}
    for adversary in AdversaryModel:
        multi_model = SystemModel(
            n_nodes=small_n, n_compromised=2, adversary=adversary
        )
        multi_truth = ExhaustiveAnalyzer(
            multi_model.with_path_model(PathModel.CYCLE_ALLOWED)
        ).anonymity_degree(distribution)
        multi_report = estimate_anonymity(
            multi_model, strategy, n_trials=multi_trials,
            rng=spawn_child_rng(rng), backend="batch",
        )
        checks[f"C=2 batch CI covers the exhaustive degree ({adversary.value})"] = (
            multi_report.estimate.contains(multi_truth, slack=0.01)
        )
        multi_points[f"C=2, {adversary.value}"] = (
            f"exhaustive {multi_truth:.4f} vs batch {multi_report.degree_bits:.4f}"
        )

    multi_model = SystemModel(n_nodes=small_n, n_compromised=2)
    multi_first = estimate_anonymity(
        multi_model, strategy, n_trials=multi_trials, rng=seed,
        backend="sharded", workers=1, shards=shards,
    )
    multi_second = estimate_anonymity(
        multi_model, strategy, n_trials=multi_trials, rng=seed,
        backend="sharded", workers=1, shards=shards,
    )
    checks["a fixed (seed, shards) reproduces the C=2 report bit-for-bit"] = (
        multi_first.estimate == multi_second.estimate
        and multi_first.identification_rate == multi_second.identification_rate
    )

    sweep = SweepResult(
        x_label="adversary model index",
        x_values=tuple(float(i) for i in range(len(labels))),
        series=(
            SweepSeries("exhaustive H*", tuple(exact)),
            SweepSeries("batch H*", tuple(batch_estimates)),
            SweepSeries("event H*", tuple(event_estimates)),
        ),
    )
    key_points = {
        label: (
            f"exhaustive {truth:.4f} vs batch {batch:.4f} vs event {event:.4f}"
        )
        for label, truth, batch, event in zip(
            labels, exact, batch_estimates, event_estimates
        )
    }
    key_points.update(multi_points)
    key_points["strategy"] = strategy.describe()
    key_points["batch trials per adversary"] = batch_trials
    key_points["C=2 batch trials per adversary"] = multi_trials
    key_points["service digest"] = cold.digest[:16] + "…"
    return ExperimentData(
        "ext-cycle",
        (
            "Extension: vectorized cycle engine vs exhaustive enumeration and "
            f"the event engine (N={small_n}, cycle-allowed paths)"
        ),
        sweep,
        checks,
        key_points,
    )


def topology_validation(
    n_nodes: int = 6,
    batch_trials: int = 50_000,
    shards: int = 3,
    seed: int = 2029,
) -> ExperimentData:
    """Anonymity versus connectivity: restricted topologies end to end.

    The paper's clique assumption is the best case for the sender: every node
    can forward to every other node, so observations carry the least
    structure.  This experiment quantifies what connectivity is worth and
    validates the whole topology stack along the way:

    * **anonymity vs connectivity:** the exact degree (exhaustive
      enumeration through the shared topology path law) across clique, grid,
      ring, two-zone and star graphs at ``N = 6``, ``C = 1`` — the degree
      falls as the graph thins, collapsing to zero on a star whose hub is
      the compromised node;
    * **cut-vertex sensitivity:** adding bridge edges between two otherwise
      separate zones monotonically recovers anonymity (1, 2, then 3
      bridges);
    * **engine parity:** the ``topology`` batch engine's exact class table
      agrees with exhaustive enumeration to ``1e-10`` on every non-clique
      topology, and its Monte-Carlo confidence interval covers the truth;
    * **determinism:** a fixed ``(seed, shards)`` pair reproduces the
      sharded topology report bit-for-bit;
    * **service round-trip:** a topology request is answered adaptively and
      replayed bit-identically from the content-addressed cache, while a
      ``topology="clique"`` request digests identically to the same request
      with no topology at all (the pre-topology cache stays warm).
    """
    from repro.batch.topoengine import TopologyEngine
    from repro.core.topology import Topology
    from repro.service import DistributionSpec, EstimateRequest, EstimationService

    distribution = UniformLength(1, 3)
    strategy = PathSelectionStrategy("topology walk", distribution)
    rng = ensure_rng(seed)

    topologies: list[tuple[str, Topology | None]] = [
        ("clique", None),
        ("grid:2x3", Topology.grid(2, 3)),
        ("two-zone:3:3:1", Topology.two_zone(3, 3, 1)),
        ("ring", Topology.ring(n_nodes)),
        ("star", Topology.star(n_nodes)),
    ]
    labels = []
    exact = []
    batch_estimates = []
    checks = {}
    for label, topology in topologies:
        model = SystemModel(n_nodes=n_nodes, n_compromised=1, topology=topology)
        truth = ExhaustiveAnalyzer(model).anonymity_degree(distribution)
        batch_report = estimate_anonymity(
            model, strategy, n_trials=batch_trials,
            rng=spawn_child_rng(rng), backend="batch",
        )
        labels.append(label)
        exact.append(truth)
        batch_estimates.append(batch_report.degree_bits)
        checks[f"batch CI covers the exhaustive degree ({label})"] = (
            batch_report.estimate.contains(truth, slack=0.01)
        )
        if topology is not None:
            engine = TopologyEngine(
                model, strategy, model.compromised_nodes(), use_numpy=True
            )
            checks[f"engine class table matches exhaustive to 1e-10 ({label})"] = (
                abs(engine.exact_degree() - truth) <= 1e-10
            )
    checks["connectivity ranks the topologies (clique best, star worst)"] = (
        exact[0] >= max(exact[1:]) and exact[-1] <= min(exact[:-1])
    )

    bridge_degrees = []
    for bridges in (1, 2, 3):
        model = SystemModel(
            n_nodes=n_nodes,
            n_compromised=1,
            topology=Topology.two_zone(3, 3, bridges),
        )
        bridge_degrees.append(ExhaustiveAnalyzer(model).anonymity_degree(distribution))
    checks["adding bridges between zones monotonically recovers anonymity"] = all(
        earlier <= later + 1e-12
        for earlier, later in zip(bridge_degrees, bridge_degrees[1:])
    )

    ring_model = SystemModel(
        n_nodes=n_nodes, n_compromised=1, topology=Topology.ring(n_nodes)
    )
    first = estimate_anonymity(
        ring_model, strategy, n_trials=batch_trials, rng=seed,
        backend="sharded", workers=1, shards=shards,
    )
    second = estimate_anonymity(
        ring_model, strategy, n_trials=batch_trials, rng=seed,
        backend="sharded", workers=1, shards=shards,
    )
    checks["a fixed (seed, shards) reproduces the topology report bit-for-bit"] = (
        first.estimate == second.estimate
        and first.identification_rate == second.identification_rate
    )

    request = EstimateRequest(
        n_nodes=n_nodes,
        distribution=DistributionSpec.from_distribution(distribution),
        topology="ring",
        precision=0.02,
        block_size=10_000,
        max_trials=batch_trials,
        seed=seed,
    )
    with EstimationService() as service:
        cold = service.estimate(request)
        warm = service.estimate(request)
    checks["a repeated topology request is served from the cache bit-identically"] = (
        not cold.from_cache and warm.from_cache and warm.report == cold.report
    )

    bare = EstimateRequest(
        n_nodes=n_nodes,
        distribution=DistributionSpec.from_distribution(distribution),
        seed=seed,
    )
    checks["a clique topology spec digests identically to no topology"] = (
        EstimateRequest(
            n_nodes=n_nodes,
            distribution=DistributionSpec.from_distribution(distribution),
            topology="clique",
            seed=seed,
        ).digest()
        == bare.digest()
    )

    sweep = SweepResult(
        x_label="topology index (decreasing connectivity)",
        x_values=tuple(float(i) for i in range(len(labels))),
        series=(
            SweepSeries("exhaustive H*", tuple(exact)),
            SweepSeries("batch H*", tuple(batch_estimates)),
        ),
    )
    key_points = {
        label: f"exhaustive {truth:.4f} vs batch {batch:.4f}"
        for label, truth, batch in zip(labels, exact, batch_estimates)
    }
    key_points["two-zone bridges 1/2/3"] = " -> ".join(
        f"{degree:.4f}" for degree in bridge_degrees
    )
    key_points["strategy"] = strategy.describe()
    key_points["batch trials per topology"] = batch_trials
    key_points["service digest"] = cold.digest[:16] + "…"
    return ExperimentData(
        "ext-topology",
        (
            "Extension: anonymity vs connectivity — the topology engine on "
            f"restricted graphs (N={n_nodes}, C=1)"
        ),
        sweep,
        checks,
        key_points,
    )
