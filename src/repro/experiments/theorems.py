"""Theorems 1–3: closed forms cross-validated against the exact engines.

The paper's Section 5.3 derives closed-form anonymity degrees for three
special cases.  The printed formulas are corrupted in the available text, so
this experiment validates our re-derived closed forms
(:mod:`repro.core.closed_form`) in two independent ways:

* against the event-class engine (:class:`repro.core.anonymity.AnonymityAnalyzer`),
  which shares the model but not the code path;
* against exhaustive enumeration of every path and observation for a small
  system, which shares neither.

It also quantifies Theorem 3's observation that, for uniform strategies with a
lower bound of at least a few hops, the anonymity degree is governed by the
expectation of the path length alone.
"""

from __future__ import annotations

from repro.analysis.sweep import SweepResult, SweepSeries
from repro.core.anonymity import AnonymityAnalyzer
from repro.core.closed_form import fixed_length_degree, two_point_degree, uniform_degree
from repro.core.enumeration import ExhaustiveAnalyzer
from repro.core.model import SystemModel
from repro.distributions import FixedLength, TwoPointLength, UniformLength
from repro.experiments.base import PAPER_N_COMPROMISED, PAPER_N_NODES, ExperimentData

__all__ = ["theorem1", "theorem2", "theorem3"]

#: Small system used for the exhaustive cross-check.
_SMALL_N = 8


def theorem1(n_nodes: int = PAPER_N_NODES) -> ExperimentData:
    """Theorem 1: fixed-length closed form vs the event-class engine and enumeration."""
    model = SystemModel(n_nodes=n_nodes, n_compromised=PAPER_N_COMPROMISED)
    analyzer = AnonymityAnalyzer(model)
    candidates = [0, 1, 2, 3, 4, 5, 10, 20, 40, 60, 80, n_nodes - 1]
    lengths = sorted({length for length in candidates if length <= n_nodes - 1})
    closed = [fixed_length_degree(n_nodes, length) for length in lengths]
    engine = [analyzer.anonymity_degree(FixedLength(length)) for length in lengths]

    small_model = SystemModel(n_nodes=_SMALL_N, n_compromised=1)
    small_exhaustive = ExhaustiveAnalyzer(small_model)
    small_lengths = list(range(0, _SMALL_N))
    small_closed = [fixed_length_degree(_SMALL_N, length) for length in small_lengths]
    small_enum = [
        small_exhaustive.anonymity_degree(FixedLength(length)) for length in small_lengths
    ]

    sweep = SweepResult(
        x_label="path length l",
        x_values=tuple(float(length) for length in lengths),
        series=(
            SweepSeries("closed form", tuple(closed)),
            SweepSeries("event-class engine", tuple(engine)),
        ),
    )
    checks = {
        "closed form equals the event-class engine (N=100)": all(
            abs(a - b) < 1e-9 for a, b in zip(closed, engine)
        ),
        "closed form equals exhaustive enumeration (N=8)": all(
            abs(a - b) < 1e-9 for a, b in zip(small_closed, small_enum)
        ),
        "F(1) and F(2) coincide": abs(closed[1] - closed[2]) < 1e-12,
    }
    key_points = {
        "max |closed - engine| (N=100)": max(abs(a - b) for a, b in zip(closed, engine)),
        "max |closed - enumeration| (N=8)": max(
            abs(a - b) for a, b in zip(small_closed, small_enum)
        ),
    }
    return ExperimentData("thm1", "Theorem 1: fixed-length closed form", sweep, checks, key_points)


def theorem2(n_nodes: int = PAPER_N_NODES) -> ExperimentData:
    """Theorem 2: two-point closed form vs the engines, sweeping the mixing weight."""
    model = SystemModel(n_nodes=n_nodes, n_compromised=PAPER_N_COMPROMISED)
    analyzer = AnonymityAnalyzer(model)
    short, long = 2, 20
    weights = [round(0.1 * step, 1) for step in range(0, 11)]
    closed = [two_point_degree(n_nodes, short, long, weight) for weight in weights]
    engine = []
    for weight in weights:
        if weight in (0.0, 1.0):
            engine.append(
                analyzer.anonymity_degree(FixedLength(long if weight == 0.0 else short))
            )
        else:
            engine.append(
                analyzer.anonymity_degree(TwoPointLength(short, long, weight))
            )

    small_exhaustive = ExhaustiveAnalyzer(SystemModel(n_nodes=_SMALL_N, n_compromised=1))
    small_closed = two_point_degree(_SMALL_N, 1, 4, 0.3)
    small_enum = small_exhaustive.anonymity_degree(TwoPointLength(1, 4, 0.3))

    sweep = SweepResult(
        x_label=f"probability of the short length ({short})",
        x_values=tuple(weights),
        series=(
            SweepSeries("closed form", tuple(closed)),
            SweepSeries("event-class engine", tuple(engine)),
        ),
    )
    checks = {
        "closed form equals the event-class engine": all(
            abs(a - b) < 1e-9 for a, b in zip(closed, engine)
        ),
        "closed form equals exhaustive enumeration (N=8)": abs(small_closed - small_enum) < 1e-9,
        "the two-point degree interpolates between the fixed-length extremes": (
            min(closed[0], closed[-1]) - 1e-9
            <= min(closed)
            <= max(closed)
            <= max(closed[0], closed[-1]) + 0.05
        ),
    }
    key_points = {
        "H* at p_short=0 (i.e. F(20))": round(closed[0], 4),
        "H* at p_short=1 (i.e. F(2))": round(closed[-1], 4),
        "max |closed - engine|": max(abs(a - b) for a, b in zip(closed, engine)),
    }
    return ExperimentData("thm2", "Theorem 2: two-point closed form", sweep, checks, key_points)


def theorem3(n_nodes: int = PAPER_N_NODES) -> ExperimentData:
    """Theorem 3: uniform closed form and the mean-dominance observation."""
    model = SystemModel(n_nodes=n_nodes, n_compromised=PAPER_N_COMPROMISED)
    analyzer = AnonymityAnalyzer(model)
    means = list(range(6, 46, 4))

    closed_uniform = []
    engine_uniform = []
    fixed_at_mean = []
    for mean in means:
        low, high = 4, 2 * mean - 4
        closed_uniform.append(uniform_degree(n_nodes, low, high))
        engine_uniform.append(analyzer.anonymity_degree(UniformLength(low, high)))
        fixed_at_mean.append(fixed_length_degree(n_nodes, mean))

    sweep = SweepResult(
        x_label="expected path length L",
        x_values=tuple(float(mean) for mean in means),
        series=(
            SweepSeries("closed form U(4, 2L-4)", tuple(closed_uniform)),
            SweepSeries("event-class engine U(4, 2L-4)", tuple(engine_uniform)),
            SweepSeries("F(L) at the same expectation", tuple(fixed_at_mean)),
        ),
    )
    mean_gap = max(abs(a - b) for a, b in zip(closed_uniform, fixed_at_mean))
    checks = {
        "closed form equals the event-class engine": all(
            abs(a - b) < 1e-9 for a, b in zip(closed_uniform, engine_uniform)
        ),
        "uniform and fixed strategies nearly coincide at equal expectation": mean_gap < 0.02,
    }
    key_points = {
        "max |U(4, 2L-4) - F(L)| over the sweep (bits)": round(mean_gap, 5),
    }
    return ExperimentData("thm3", "Theorem 3: uniform closed form", sweep, checks, key_points)
