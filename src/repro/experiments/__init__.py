"""Experiment harnesses: one module per paper figure, plus extension studies."""

from repro.experiments.base import ExperimentData, PAPER_N_COMPROMISED, PAPER_N_NODES
from repro.experiments.extensions import (
    adversary_ablation,
    compromised_sweep,
    predecessor_attack_rounds,
    protocol_comparison,
    simulation_validation,
)
from repro.experiments.fig3 import figure3a, figure3b
from repro.experiments.fig4 import figure4a, figure4b, figure4c, figure4d
from repro.experiments.fig5 import figure5a, figure5b, figure5c, figure5d
from repro.experiments.fig6 import figure6
from repro.experiments.registry import EXPERIMENTS, list_experiments, run_experiment
from repro.experiments.theorems import theorem1, theorem2, theorem3

__all__ = [
    "ExperimentData",
    "PAPER_N_NODES",
    "PAPER_N_COMPROMISED",
    "figure3a",
    "figure3b",
    "figure4a",
    "figure4b",
    "figure4c",
    "figure4d",
    "figure5a",
    "figure5b",
    "figure5c",
    "figure5d",
    "figure6",
    "theorem1",
    "theorem2",
    "theorem3",
    "compromised_sweep",
    "adversary_ablation",
    "protocol_comparison",
    "simulation_validation",
    "predecessor_attack_rounds",
    "EXPERIMENTS",
    "list_experiments",
    "run_experiment",
]
