"""Figure 6: the optimized path-length distribution.

For every target expected path length ``L`` the paper compares three
strategies of equal expectation:

* the fixed strategy ``F(L)``,
* the uniform strategy ``U(2, 2L - 2)``,
* the *optimized* distribution: the solution of the Section 5.4 optimization
  problem restricted to distributions with expectation ``L``.

The optimized strategy dominates both alternatives by construction; the
experiment verifies that our optimizer actually achieves that domination and
reports how much head-room remains above the best fixed-length strategy.
"""

from __future__ import annotations

from repro.analysis.sweep import SweepResult, SweepSeries
from repro.core.anonymity import AnonymityAnalyzer
from repro.core.model import SystemModel
from repro.core.optimizer import best_uniform_for_mean, optimize_distribution
from repro.distributions import FixedLength, UniformLength
from repro.experiments.base import PAPER_N_COMPROMISED, PAPER_N_NODES, ExperimentData

__all__ = ["figure6"]


def figure6(
    n_nodes: int = PAPER_N_NODES,
    n_compromised: int = PAPER_N_COMPROMISED,
    means: list[int] | None = None,
    full_simplex: bool = False,
) -> ExperimentData:
    """Reproduce Figure 6: optimized distribution vs ``F(L)`` and ``U(2, 2L-2)``.

    By default the optimization is performed over the uniform family (choose
    the best width for the given mean), matching the paper's restricted
    optimization; pass ``full_simplex=True`` to run the SLSQP search over all
    distributions of the given mean (slower, never worse).
    """
    model = SystemModel(n_nodes=n_nodes, n_compromised=n_compromised)
    analyzer = AnonymityAnalyzer(model)
    if means is None:
        means = list(range(2, 50, 3))

    fixed_values = []
    uniform_values = []
    optimized_values = []
    optimized_descriptions: dict[int, str] = {}
    for mean in means:
        fixed_values.append(analyzer.anonymity_degree(FixedLength(mean)))
        high = 2 * mean - 2
        if 2 <= high <= model.max_simple_path_length and high >= 2:
            uniform_values.append(analyzer.anonymity_degree(UniformLength(2, high)))
        else:
            uniform_values.append(float("nan"))

        scan = best_uniform_for_mean(model, mean)
        best = scan.best_degree
        best_description = scan.best_distribution.name
        if full_simplex:
            outcome = optimize_distribution(
                model,
                min_length=0,
                max_length=min(model.max_simple_path_length, 2 * mean),
                mean=float(mean),
            )
            if outcome.degree_bits > best:
                best = outcome.degree_bits
                best_description = outcome.distribution.name
        optimized_values.append(best)
        optimized_descriptions[mean] = best_description

    sweep = SweepResult(
        x_label="expected path length L",
        x_values=tuple(float(mean) for mean in means),
        series=(
            SweepSeries("F(L)", tuple(fixed_values)),
            SweepSeries("U(2, 2L-2)", tuple(uniform_values)),
            SweepSeries("Optimized", tuple(optimized_values)),
        ),
    )

    checks = {
        "the optimized strategy is never worse than F(L)": all(
            opt >= fixed - 1e-9 for opt, fixed in zip(optimized_values, fixed_values)
        ),
        "the optimized strategy is never worse than U(2, 2L-2)": all(
            opt >= uniform - 1e-9
            for opt, uniform in zip(optimized_values, uniform_values)
            if uniform == uniform  # skip NaN entries
        ),
        "optimization strictly helps for at least one expectation": any(
            opt > fixed + 1e-6 for opt, fixed in zip(optimized_values, fixed_values)
        ),
    }
    gains = [opt - fixed for opt, fixed in zip(optimized_values, fixed_values)]
    best_gain_index = max(range(len(gains)), key=gains.__getitem__)
    key_points = {
        "largest gain over F(L) (bits)": round(gains[best_gain_index], 5),
        "expectation with the largest gain": means[best_gain_index],
        "optimized distribution at that expectation": optimized_descriptions[
            means[best_gain_index]
        ],
        "H* of optimized strategy at that expectation": round(
            optimized_values[best_gain_index], 4
        ),
    }
    return ExperimentData(
        experiment_id="fig6",
        title=(
            f"Figure 6: optimal path-length distribution vs F(L) and U(2, 2L-2) "
            f"(N={n_nodes}, C={n_compromised})"
        ),
        sweep=sweep,
        checks=checks,
        key_points=key_points,
    )
