"""Registry mapping experiment identifiers to their generator functions.

The registry is the single source of truth used by the CLI (``repro-anon
figure <id>``), the benchmark harness (one benchmark per entry), and
EXPERIMENTS.md (one section per entry).
"""

from __future__ import annotations

from collections.abc import Callable

from repro.experiments.base import ExperimentData
from repro.experiments.extensions import (
    adaptive_validation,
    adversary_ablation,
    batch_validation,
    compromised_sweep,
    cycle_validation,
    predecessor_attack_rounds,
    protocol_comparison,
    sharded_validation,
    simulation_validation,
    topology_validation,
)
from repro.experiments.fig3 import figure3a, figure3b
from repro.experiments.fig4 import figure4a, figure4b, figure4c, figure4d
from repro.experiments.fig5 import figure5a, figure5b, figure5c, figure5d
from repro.experiments.fig6 import figure6
from repro.experiments.theorems import theorem1, theorem2, theorem3

__all__ = ["EXPERIMENTS", "run_experiment", "list_experiments"]

#: Every reproducible experiment: paper figures, theorems, and extensions.
EXPERIMENTS: dict[str, Callable[[], ExperimentData]] = {
    "fig3a": figure3a,
    "fig3b": figure3b,
    "fig4a": figure4a,
    "fig4b": figure4b,
    "fig4c": figure4c,
    "fig4d": figure4d,
    "fig5a": figure5a,
    "fig5b": figure5b,
    "fig5c": figure5c,
    "fig5d": figure5d,
    "fig6": figure6,
    "thm1": theorem1,
    "thm2": theorem2,
    "thm3": theorem3,
    "ext-c": compromised_sweep,
    "ext-adv": adversary_ablation,
    "ext-proto": protocol_comparison,
    "ext-sim": simulation_validation,
    "ext-pred": predecessor_attack_rounds,
    "ext-batch": batch_validation,
    "ext-shard": sharded_validation,
    "ext-adaptive": adaptive_validation,
    "ext-cycle": cycle_validation,
    "ext-topology": topology_validation,
}


def list_experiments() -> list[str]:
    """Identifiers of every registered experiment, in canonical order."""
    return list(EXPERIMENTS)


def run_experiment(experiment_id: str) -> ExperimentData:
    """Run one registered experiment by identifier."""
    try:
        generator = EXPERIMENTS[experiment_id]
    except KeyError as exc:
        known = ", ".join(EXPERIMENTS)
        raise KeyError(
            f"unknown experiment {experiment_id!r}; known experiments: {known}"
        ) from exc
    return generator()
