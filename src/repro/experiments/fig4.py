"""Figure 4: effect of the path-length *expectation* for uniform strategies.

The paper fixes the lower bound ``a`` of a uniform strategy ``U(a, a + L)``
and sweeps the range width ``L`` (which, for a fixed lower bound, moves the
expectation while widening the variance).  The four panels use different
lower-bound regimes:

* (a) small lower bounds (4, 6, 10): the degree grows with the expectation,
  and for the same width the strategy with the larger lower bound does better;
* (b) intermediate lower bounds (25, 40): the curves develop an interior
  extreme point;
* (c) large lower bounds (51, 60, 70): the long-path effect dominates and the
  degree decreases with the expectation;
* (d) tiny lower bounds (0, 1, 6): the short-path effect — including length 0
  in the support hurts badly until the range is wide enough to dilute it.
"""

from __future__ import annotations

import math

from repro.analysis.sweep import uniform_width_sweep
from repro.core.model import SystemModel
from repro.experiments.base import PAPER_N_COMPROMISED, PAPER_N_NODES, ExperimentData

__all__ = ["figure4a", "figure4b", "figure4c", "figure4d"]


def _finite(values) -> list[float]:
    return [value for value in values if not math.isnan(value)]


def _build(
    experiment_id: str,
    title: str,
    lower_bounds: list[int],
    widths: list[int],
    n_nodes: int,
    n_compromised: int,
) -> tuple[ExperimentData, SystemModel]:
    model = SystemModel(n_nodes=n_nodes, n_compromised=n_compromised)
    sweep = uniform_width_sweep(model, lower_bounds, widths)
    return (
        ExperimentData(
            experiment_id=experiment_id,
            title=title,
            sweep=sweep,
        ),
        model,
    )


def figure4a(
    n_nodes: int = PAPER_N_NODES, n_compromised: int = PAPER_N_COMPROMISED
) -> ExperimentData:
    """Panel (a): small lower bounds — degree grows with the expectation."""
    lower_bounds = [4, 6, 10]
    widths = list(range(0, 90, 5))
    data, _ = _build(
        "fig4a",
        f"Figure 4(a): H* vs range width, lower bounds {lower_bounds} (N={n_nodes})",
        lower_bounds,
        widths,
        n_nodes,
        n_compromised,
    )
    by_label = data.sweep.as_dict()
    checks = {}
    for label, values in by_label.items():
        finite = _finite(values)
        checks[f"{label}: widening the range beyond 0 increases H*"] = finite[-1] > finite[0]
    # For the same width, the larger lower bound has the larger degree.
    first = _finite(by_label["U(4, 4+L)"])
    last = _finite(by_label["U(10, 10+L)"])
    checks["larger lower bound dominates at equal width"] = last[0] > first[0]
    key_points = {
        "H* of U(4,4)": round(by_label["U(4, 4+L)"][0], 4),
        "H* of U(10,10)": round(by_label["U(10, 10+L)"][0], 4),
        "H* of U(4,89)": round(_finite(by_label["U(4, 4+L)"])[-1], 4),
    }
    return ExperimentData(data.experiment_id, data.title, data.sweep, checks, key_points)


def figure4b(
    n_nodes: int = PAPER_N_NODES, n_compromised: int = PAPER_N_COMPROMISED
) -> ExperimentData:
    """Panel (b): intermediate lower bounds (25 and 40)."""
    lower_bounds = [25, 40]
    widths = list(range(0, 60, 5))
    data, _ = _build(
        "fig4b",
        f"Figure 4(b): H* vs range width, lower bounds {lower_bounds} (N={n_nodes})",
        lower_bounds,
        widths,
        n_nodes,
        n_compromised,
    )
    by_label = data.sweep.as_dict()
    checks = {}
    for label, values in by_label.items():
        finite = _finite(values)
        spread = max(finite) - min(finite)
        checks[f"{label}: the curve is nearly flat (intermediate regime)"] = spread < 0.02
    key_points = {
        "H* of U(25,25)": round(by_label["U(25, 25+L)"][0], 4),
        "H* of U(40,40)": round(by_label["U(40, 40+L)"][0], 4),
    }
    return ExperimentData(data.experiment_id, data.title, data.sweep, checks, key_points)


def figure4c(
    n_nodes: int = PAPER_N_NODES, n_compromised: int = PAPER_N_COMPROMISED
) -> ExperimentData:
    """Panel (c): large lower bounds — the long-path effect dominates."""
    lower_bounds = [51, 60, 70]
    widths = list(range(0, 45, 4))
    data, _ = _build(
        "fig4c",
        f"Figure 4(c): H* vs range width, lower bounds {lower_bounds} (N={n_nodes})",
        lower_bounds,
        widths,
        n_nodes,
        n_compromised,
    )
    by_label = data.sweep.as_dict()
    checks = {}
    for label, values in by_label.items():
        finite = _finite(values)
        checks[f"{label}: widening the range does not improve H* (long path effect)"] = (
            finite[-1] <= finite[0] + 1e-9
        )
    key_points = {
        "H* of U(51,51)": round(by_label["U(51, 51+L)"][0], 4),
        "H* of U(70,70)": round(by_label["U(70, 70+L)"][0], 4),
    }
    return ExperimentData(data.experiment_id, data.title, data.sweep, checks, key_points)


def figure4d(
    n_nodes: int = PAPER_N_NODES, n_compromised: int = PAPER_N_COMPROMISED
) -> ExperimentData:
    """Panel (d): tiny lower bounds — the short-path effect for variable length."""
    lower_bounds = [0, 1, 6]
    widths = list(range(1, 90, 5))
    data, _ = _build(
        "fig4d",
        f"Figure 4(d): H* vs range width, lower bounds {lower_bounds} (N={n_nodes})",
        lower_bounds,
        widths,
        n_nodes,
        n_compromised,
    )
    by_label = data.sweep.as_dict()
    u0 = _finite(by_label["U(0, 0+L)"])
    u6 = _finite(by_label["U(6, 6+L)"])
    checks = {
        "including length 0 hurts for narrow ranges (short path effect)": u0[0] < u6[0],
        "the penalty of including length 0 shrinks as the range widens": (
            (u6[0] - u0[0]) > (u6[min(len(u6), len(u0)) - 1] - u0[min(len(u6), len(u0)) - 1])
        ),
    }
    key_points = {
        "H* of U(0,1)": round(u0[0], 4),
        "H* of U(6,7)": round(u6[0], 4),
        "H* of U(0,86)": round(u0[-1], 4),
    }
    return ExperimentData(data.experiment_id, data.title, data.sweep, checks, key_points)
