"""Figure 3: anonymity degree of fixed-length strategies vs. the path length.

Figure 3(a) of the paper plots ``H*(S)`` against the fixed path length ``l``
for a system of 100 nodes with one compromised node, ``l = 1 .. 100``; Figure
3(b) magnifies the short-path region ``l = 0 .. 4``.  The paper draws two
conclusions from these plots:

* the **short-path effect** — very short paths are bad (a direct path exposes
  the sender completely; one- and two-hop paths give the adversary a good
  chance of seeing the sender directly), and lengths 2 and 3 achieve
  (essentially) the same degree;
* the **long-path effect** — the degree does *not* increase monotonically with
  the path length: beyond some length the growing chance that the compromised
  node sits on the path outweighs the extra mixing, and the degree decreases.

Both effects emerge from the re-derived model; the exact location of the
maximum differs from the paper's (whose posterior model cannot be recovered
from the corrupted text), which EXPERIMENTS.md documents quantitatively.
"""

from __future__ import annotations

from repro.analysis.sweep import fixed_length_sweep
from repro.core.model import SystemModel
from repro.experiments.base import PAPER_N_COMPROMISED, PAPER_N_NODES, ExperimentData

__all__ = ["figure3a", "figure3b"]


def figure3a(
    n_nodes: int = PAPER_N_NODES,
    n_compromised: int = PAPER_N_COMPROMISED,
    max_length: int | None = None,
) -> ExperimentData:
    """Reproduce Figure 3(a): ``H*`` vs fixed path length over the full range."""
    model = SystemModel(n_nodes=n_nodes, n_compromised=n_compromised)
    if max_length is None:
        max_length = model.max_simple_path_length
    lengths = list(range(1, max_length + 1))
    sweep = fixed_length_sweep(model, lengths)
    values = sweep.series[0].values

    best_index = max(range(len(values)), key=values.__getitem__)
    best_length = lengths[best_index]
    best_value = values[best_index]
    checks = {
        "degree increases from short paths to the optimum": values[0] < best_value,
        "long path effect: the maximum is interior, not at the longest path": (
            0 < best_index < len(values) - 1
        ),
        "degree decreases beyond the optimum": values[-1] < best_value,
        "degree stays below the log2(N) upper bound": best_value < model.max_entropy,
    }
    key_points = {
        "N": n_nodes,
        "C": n_compromised,
        "optimal fixed length": best_length,
        "H* at optimal length": round(best_value, 4),
        "H* at length 1": round(values[0], 4),
        "H* at longest path": round(values[-1], 4),
        "log2(N) upper bound": round(model.max_entropy, 4),
    }
    return ExperimentData(
        experiment_id="fig3a",
        title=f"Figure 3(a): H*(S) vs fixed path length (N={n_nodes}, C={n_compromised})",
        sweep=sweep,
        checks=checks,
        key_points=key_points,
    )


def figure3b(
    n_nodes: int = PAPER_N_NODES,
    n_compromised: int = PAPER_N_COMPROMISED,
) -> ExperimentData:
    """Reproduce Figure 3(b): the short-path region ``l = 0 .. 4``."""
    model = SystemModel(n_nodes=n_nodes, n_compromised=n_compromised)
    lengths = [0, 1, 2, 3, 4]
    sweep = fixed_length_sweep(model, lengths)
    values = dict(zip(lengths, sweep.series[0].values))

    checks = {
        "a direct path (l=0) provides no anonymity": values[0] == 0.0,
        "lengths 2 and 3 are essentially identical (paper's observation)": (
            abs(values[2] - values[3]) < 5e-3
        ),
        "length 4 improves on lengths 2 and 3 (short path effect)": (
            values[4] > values[2] and values[4] > values[3]
        ),
        "short paths are far below the log2(N) bound": values[1] < model.max_entropy,
    }
    key_points = {f"H* at l={length}": round(value, 4) for length, value in values.items()}
    return ExperimentData(
        experiment_id="fig3b",
        title=f"Figure 3(b): short-path effect (N={n_nodes}, C={n_compromised})",
        sweep=sweep,
        checks=checks,
        key_points=key_points,
    )
