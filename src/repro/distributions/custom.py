"""Arbitrary (categorical) path-length distributions.

The optimization problem of Section 5.4 searches over *all* probability
distributions supported on an integer interval, so the optimizer needs a
distribution type that can represent an arbitrary pmf vector.  The same class
backs truncation and mixture operations on the other distribution types.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

import numpy as np

from repro.distributions.base import PathLengthDistribution
from repro.exceptions import DistributionError
from repro.utils.mathx import kahan_sum

__all__ = ["CategoricalLength"]


class CategoricalLength(PathLengthDistribution):
    """Explicit pmf over a finite set of non-negative integer lengths."""

    def __init__(self, pmf: Mapping[int, float], name: str | None = None) -> None:
        super().__init__()
        if not pmf:
            raise DistributionError("CategoricalLength requires a non-empty pmf")
        cleaned: dict[int, float] = {}
        for length, prob in pmf.items():
            length = int(length)
            prob = float(prob)
            if prob < -1e-12:
                raise DistributionError(
                    f"probability of length {length} is negative: {prob}"
                )
            if prob > 0.0:
                cleaned[length] = cleaned.get(length, 0.0) + prob
        if not cleaned:
            raise DistributionError("CategoricalLength pmf has no positive mass")
        total = kahan_sum(cleaned.values())
        if abs(total - 1.0) > 1e-6:
            raise DistributionError(
                f"CategoricalLength pmf must sum to 1 (within 1e-6), got {total}"
            )
        # Renormalise exactly so downstream sums-to-one assertions hold tightly.
        self._pmf_dict = {length: prob / total for length, prob in sorted(cleaned.items())}
        self._name = name or "Categorical(" + ", ".join(
            f"{length}:{prob:.3g}" for length, prob in self._pmf_dict.items()
        ) + ")"

    @property
    def name(self) -> str:
        return self._name

    def _pmf_map(self) -> Mapping[int, float]:
        return self._pmf_dict

    # ------------------------------------------------------------------ #
    # Convenience constructors                                            #
    # ------------------------------------------------------------------ #

    @classmethod
    def from_vector(
        cls,
        probabilities: Sequence[float],
        offset: int = 0,
        name: str | None = None,
    ) -> "CategoricalLength":
        """Build a distribution from a dense vector starting at length ``offset``.

        Tiny negative entries produced by numerical optimizers are clipped to
        zero before normalisation; this is the entry point used by
        :mod:`repro.core.optimizer`.
        """
        vector = np.asarray(probabilities, dtype=float)
        vector = np.clip(vector, 0.0, None)
        total = vector.sum()
        if total <= 0.0:
            raise DistributionError("probability vector has no positive mass")
        vector = vector / total
        pmf = {offset + i: float(p) for i, p in enumerate(vector) if p > 0.0}
        return cls(pmf, name=name)

    @classmethod
    def mixture(
        cls,
        components: Sequence[tuple[PathLengthDistribution, float]],
        name: str | None = None,
    ) -> "CategoricalLength":
        """Finite mixture of path-length distributions with the given weights."""
        if not components:
            raise DistributionError("mixture requires at least one component")
        weights = [float(w) for _, w in components]
        if any(w < 0.0 for w in weights):
            raise DistributionError("mixture weights must be non-negative")
        total = sum(weights)
        if total <= 0.0:
            raise DistributionError("mixture weights must not all be zero")
        pmf: dict[int, float] = {}
        for (component, weight) in components:
            for length, prob in component.items():
                pmf[length] = pmf.get(length, 0.0) + (weight / total) * prob
        if name is None:
            name = "Mixture(" + " + ".join(
                f"{w / total:.3g}*{c.name}" for c, w in components
            ) + ")"
        return cls(pmf, name=name)
