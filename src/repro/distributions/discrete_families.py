"""Additional parametric path-length families (Poisson, binomial, Zipf).

These families are not analysed in the paper, but they are natural candidates
for a system designer exploring the optimization problem of Section 5.4: the
Poisson and binomial families interpolate smoothly between "almost fixed" and
"widely spread" lengths, and the (truncated) Zipf family models heavy-tailed
strategies.  They are exercised by the extension benchmarks.
"""

from __future__ import annotations

import math
from collections.abc import Mapping

from repro.distributions.base import PathLengthDistribution
from repro.exceptions import DistributionError
from repro.utils.validation import (
    check_non_negative_int,
    check_positive_int,
    check_probability,
)

__all__ = ["PoissonLength", "BinomialLength", "ZipfLength"]


class PoissonLength(PathLengthDistribution):
    """Poisson-distributed extra hops on top of a guaranteed minimum.

    ``L = minimum + K`` with ``K ~ Poisson(rate)``, truncated at
    ``max_length`` and renormalised.  ``max_length`` defaults to a point where
    the discarded tail mass is below 1e-12.
    """

    def __init__(
        self,
        rate: float,
        minimum: int = 1,
        max_length: int | None = None,
    ) -> None:
        super().__init__()
        rate = float(rate)
        if rate < 0.0:
            raise DistributionError(f"rate must be >= 0, got {rate}")
        self._rate = rate
        self._minimum = check_non_negative_int(minimum, "minimum")
        if max_length is not None:
            max_length = check_non_negative_int(max_length, "max_length")
            if max_length < minimum:
                raise DistributionError("max_length must be >= minimum")
        self._max_length = max_length

    @property
    def rate(self) -> float:
        """Mean number of extra hops beyond the guaranteed minimum."""
        return self._rate

    @property
    def minimum(self) -> int:
        """Guaranteed minimum number of intermediate hops."""
        return self._minimum

    @property
    def name(self) -> str:
        return f"Poisson(rate={self._rate:g}, min={self._minimum})"

    def _pmf_map(self) -> Mapping[int, float]:
        if self._rate == 0.0:
            return {self._minimum: 1.0}
        if self._max_length is not None:
            horizon = self._max_length - self._minimum
        else:
            horizon = max(10, int(self._rate + 12.0 * math.sqrt(self._rate) + 12))
        pmf: dict[int, float] = {}
        total = 0.0
        log_rate = math.log(self._rate)
        for k in range(horizon + 1):
            log_p = -self._rate + k * log_rate - math.lgamma(k + 1)
            prob = math.exp(log_p)
            pmf[self._minimum + k] = prob
            total += prob
        return {length: prob / total for length, prob in pmf.items()}


class BinomialLength(PathLengthDistribution):
    """``L = minimum + K`` with ``K ~ Binomial(trials, success)``."""

    def __init__(self, trials: int, success: float, minimum: int = 1) -> None:
        super().__init__()
        self._trials = check_positive_int(trials, "trials")
        self._success = check_probability(success, "success")
        self._minimum = check_non_negative_int(minimum, "minimum")

    @property
    def name(self) -> str:
        return f"Binom(n={self._trials}, p={self._success:g}, min={self._minimum})"

    def _pmf_map(self) -> Mapping[int, float]:
        pmf: dict[int, float] = {}
        for k in range(self._trials + 1):
            prob = (
                math.comb(self._trials, k)
                * (self._success**k)
                * ((1.0 - self._success) ** (self._trials - k))
            )
            if prob > 0.0:
                pmf[self._minimum + k] = prob
        return pmf


class ZipfLength(PathLengthDistribution):
    """Truncated Zipf (power-law) path lengths: ``Pr[L = l] ∝ l ** -exponent``.

    Supported on ``[minimum, max_length]`` with ``minimum >= 1``.
    """

    def __init__(self, exponent: float, minimum: int, max_length: int) -> None:
        super().__init__()
        exponent = float(exponent)
        if exponent <= 0.0:
            raise DistributionError(f"exponent must be > 0, got {exponent}")
        self._exponent = exponent
        self._minimum = check_positive_int(minimum, "minimum")
        self._max_length = check_positive_int(max_length, "max_length")
        if self._max_length < self._minimum:
            raise DistributionError("max_length must be >= minimum")

    @property
    def name(self) -> str:
        return f"Zipf(s={self._exponent:g}, [{self._minimum}, {self._max_length}])"

    def _pmf_map(self) -> Mapping[int, float]:
        weights = {
            length: length ** (-self._exponent)
            for length in range(self._minimum, self._max_length + 1)
        }
        total = sum(weights.values())
        return {length: weight / total for length, weight in weights.items()}
