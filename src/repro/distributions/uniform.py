"""Uniform path-length strategy ``U(a, b)``.

The paper's variable-length analysis (Sections 5.3 and 6.2–6.4) concentrates
on path lengths drawn uniformly from an integer interval ``[a, b]``: every
length in the interval is equally likely.  ``U(a, a)`` degenerates to the
fixed-length strategy ``F(a)``.
"""

from __future__ import annotations

from collections.abc import Mapping

from repro.distributions.base import PathLengthDistribution
from repro.utils.validation import check_range

__all__ = ["UniformLength"]


class UniformLength(PathLengthDistribution):
    """Uniform distribution over the integer interval ``[low, high]``."""

    def __init__(self, low: int, high: int) -> None:
        super().__init__()
        self._low, self._high = check_range(low, high, "low", "high")

    @property
    def low(self) -> int:
        """Smallest possible path length (inclusive)."""
        return self._low

    @property
    def high(self) -> int:
        """Largest possible path length (inclusive)."""
        return self._high

    @property
    def width(self) -> int:
        """Difference between the longest and the shortest path length."""
        return self._high - self._low

    @property
    def name(self) -> str:
        return f"U({self._low}, {self._high})"

    def _pmf_map(self) -> Mapping[int, float]:
        count = self._high - self._low + 1
        probability = 1.0 / count
        return {length: probability for length in range(self._low, self._high + 1)}

    def mean(self) -> float:
        return (self._low + self._high) / 2.0

    def variance(self) -> float:
        count = self._high - self._low + 1
        return (count * count - 1) / 12.0

    @classmethod
    def from_mean_and_width(cls, mean: float, width: int) -> "UniformLength":
        """Build ``U(mean - width/2, mean + width/2)`` from its centre and width.

        Figure 5 and Figure 6 of the paper parameterise uniform strategies by
        their expected length; this constructor mirrors that usage.  The
        resulting bounds must be non-negative integers.
        """
        low = mean - width / 2.0
        high = mean + width / 2.0
        if abs(low - round(low)) > 1e-9 or abs(high - round(high)) > 1e-9:
            raise ValueError(
                "mean and width must produce integer bounds; "
                f"got low={low}, high={high}"
            )
        return cls(int(round(low)), int(round(high)))
