"""Abstract interface for path-length distributions.

The paper's entire analysis is parameterised by the probability distribution
``Pr[L = l]`` of the rerouting path length (the number of intermediate nodes
between the sender and the receiver).  Fixed-length strategies are the special
case of a distribution concentrated on a single value; variable-length
strategies (Crowds, Onion Routing II) correspond to non-degenerate
distributions.

Every concrete distribution exposes:

* :meth:`PathLengthDistribution.pmf` — ``Pr[L = l]`` for an integer ``l``,
* :attr:`PathLengthDistribution.support` — the sorted tuple of lengths with
  non-zero probability,
* :meth:`PathLengthDistribution.mean` / :meth:`variance` — exact moments,
* :meth:`PathLengthDistribution.sample` — draw path lengths for simulation,
* :meth:`PathLengthDistribution.truncated` — restrict to a maximum length
  (needed when simple paths cap the length at ``N - 1``).

Distributions are immutable value objects: they compare equal by their pmf and
can safely be shared between strategies, analysers, and optimizers.
"""

from __future__ import annotations

import abc
from array import array
from bisect import bisect_left
from collections.abc import Callable, Iterator, Mapping, Sequence

import numpy as np

from repro.exceptions import DistributionError
from repro.utils.mathx import kahan_sum
from repro.utils.rng import RandomSource, ensure_rng

__all__ = ["PathLengthDistribution"]

#: Probabilities below this threshold are treated as exactly zero when
#: computing the support.  Keeps supports finite for distributions with
#: analytically infinite tails that were truncated numerically.
_SUPPORT_EPSILON = 1e-15


class PathLengthDistribution(abc.ABC):
    """A probability distribution over non-negative integer path lengths."""

    # ------------------------------------------------------------------ #
    # Abstract surface                                                    #
    # ------------------------------------------------------------------ #

    @abc.abstractmethod
    def _pmf_map(self) -> Mapping[int, float]:
        """Return the full pmf as a mapping ``length -> probability``.

        Concrete subclasses implement only this method; every derived
        quantity (support, moments, sampling, truncation) is computed from it
        by the base class.  The mapping must contain only non-negative
        probabilities summing to one (within floating-point tolerance).
        """

    @property
    @abc.abstractmethod
    def name(self) -> str:
        """Short human-readable description, e.g. ``"F(5)"`` or ``"U(2, 10)"``."""

    # ------------------------------------------------------------------ #
    # Derived behaviour                                                   #
    # ------------------------------------------------------------------ #

    def __init__(self) -> None:
        self._cached_pmf: dict[int, float] | None = None
        self._cached_cdf: tuple[tuple[int, ...], tuple[float, ...]] | None = None

    def _pmf(self) -> dict[int, float]:
        if self._cached_pmf is None:
            raw = dict(self._pmf_map())
            self._validate_pmf(raw)
            self._cached_pmf = {
                length: prob
                for length, prob in sorted(raw.items())
                if prob > _SUPPORT_EPSILON
            }
        return self._cached_pmf

    @staticmethod
    def _validate_pmf(pmf: Mapping[int, float]) -> None:
        if not pmf:
            raise DistributionError("path-length distribution has empty support")
        for length, prob in pmf.items():
            if not isinstance(length, (int, np.integer)) or isinstance(length, bool):
                raise DistributionError(
                    f"path lengths must be integers, got {length!r}"
                )
            if length < 0:
                raise DistributionError(f"path lengths must be >= 0, got {length}")
            if prob < -1e-12:
                raise DistributionError(
                    f"probability of length {length} is negative: {prob}"
                )
        total = kahan_sum(pmf.values())
        if abs(total - 1.0) > 1e-9:
            raise DistributionError(
                f"path-length probabilities must sum to 1, got {total!r}"
            )

    # -- pmf / support ---------------------------------------------------

    def pmf(self, length: int) -> float:
        """Return ``Pr[L = length]`` (zero outside the support)."""
        return self._pmf().get(int(length), 0.0)

    @property
    def support(self) -> tuple[int, ...]:
        """Sorted tuple of path lengths with non-zero probability."""
        return tuple(self._pmf().keys())

    @property
    def min_length(self) -> int:
        """Smallest path length with non-zero probability."""
        return self.support[0]

    @property
    def max_length(self) -> int:
        """Largest path length with non-zero probability."""
        return self.support[-1]

    def items(self) -> Iterator[tuple[int, float]]:
        """Iterate ``(length, probability)`` pairs over the support."""
        return iter(self._pmf().items())

    def as_dict(self) -> dict[int, float]:
        """Return a copy of the pmf as a plain dictionary."""
        return dict(self._pmf())

    # -- moments ---------------------------------------------------------

    def mean(self) -> float:
        """Exact expectation ``E[L]``."""
        return kahan_sum(length * prob for length, prob in self.items())

    def variance(self) -> float:
        """Exact variance ``Var[L]``."""
        mu = self.mean()
        return kahan_sum(prob * (length - mu) ** 2 for length, prob in self.items())

    def std(self) -> float:
        """Standard deviation of the path length."""
        return float(np.sqrt(self.variance()))

    def expectation_of(self, func: Callable[[int], float]) -> float:
        """Expectation ``E[func(L)]`` of an arbitrary function of the length."""
        return kahan_sum(prob * func(length) for length, prob in self.items())

    # -- sampling --------------------------------------------------------

    def sample(self, rng: RandomSource = None, size: int | None = None) -> int | np.ndarray:
        """Draw one path length (``size=None``) or an array of ``size`` lengths."""
        generator = ensure_rng(rng)
        lengths = np.array(self.support, dtype=np.int64)
        probs = np.array([self.pmf(length) for length in self.support], dtype=float)
        probs = probs / probs.sum()
        if size is None:
            return int(generator.choice(lengths, p=probs))
        return generator.choice(lengths, p=probs, size=size)

    # -- bulk inverse-CDF sampling ---------------------------------------

    def cdf_table(self) -> tuple[tuple[int, ...], tuple[float, ...]]:
        """The support and its cumulative probabilities, cached.

        The table is the basis of inverse-CDF sampling: ``cumulative[i]`` is
        ``Pr[L <= support[i]]``.  The final entry is forced to exactly ``1.0``
        so that a uniform draw of ``1.0 - eps`` can never fall off the end of
        the table due to floating-point shortfall in the running sum.
        """
        if self._cached_cdf is None:
            lengths = []
            cumulative = []
            total = 0.0
            for length, prob in self.items():
                total += prob
                lengths.append(length)
                # Clamp the running sum so float overshoot at an interior
                # entry can never make the table non-monotonic (bisection
                # requires sorted input).
                cumulative.append(min(total, 1.0))
            cumulative[-1] = 1.0
            self._cached_cdf = (tuple(lengths), tuple(cumulative))
        return self._cached_cdf

    def inverse_cdf(self, u: float) -> int:
        """Quantile function: the smallest length ``l`` with ``Pr[L <= l] >= u``.

        Pure-Python bisection over :meth:`cdf_table`; this is the scalar
        reference implementation of the bulk sampler in :meth:`sample_batch`.
        """
        if not 0.0 <= u <= 1.0:
            raise DistributionError(f"inverse_cdf requires u in [0, 1], got {u!r}")
        lengths, cumulative = self.cdf_table()
        index = bisect_left(cumulative, u)
        if index >= len(lengths):
            index = len(lengths) - 1
        return lengths[index]

    def sample_batch(self, size: int, rng: RandomSource = None) -> array:
        """Draw ``size`` path lengths in one bulk inverse-CDF pass.

        Returns a columnar ``array('q')`` of signed 64-bit lengths — the
        storage format of the vectorized estimators in :mod:`repro.batch` —
        rather than ``size`` boxed Python integers.  One uniform variate is
        consumed per trial, so batch consumers stay reproducible under a fixed
        seed regardless of how the draws are post-processed.
        """
        if size < 0:
            raise DistributionError(f"sample_batch requires size >= 0, got {size}")
        generator = ensure_rng(rng)
        lengths, cumulative = self.cdf_table()
        uniforms = generator.random(size)
        indices = np.searchsorted(np.asarray(cumulative), uniforms, side="left")
        np.minimum(indices, len(lengths) - 1, out=indices)
        mapped = np.asarray(lengths, dtype=np.int64)[indices]
        column = array("q")
        column.frombytes(mapped.tobytes())
        return column

    # -- transformations -------------------------------------------------

    def truncated(self, max_length: int) -> "PathLengthDistribution":
        """Return this distribution conditioned on ``L <= max_length``.

        Simple rerouting paths in a system of ``N`` nodes cannot contain more
        than ``N - 1`` intermediate nodes, so analyses of heavy-tailed
        strategies (e.g. the geometric lengths produced by Crowds-style coin
        flipping) condition the distribution on the feasible range first.
        """
        from repro.distributions.custom import CategoricalLength

        kept = {
            length: prob for length, prob in self.items() if length <= max_length
        }
        if not kept:
            raise DistributionError(
                f"truncating {self.name} to max_length={max_length} empties the support"
            )
        total = kahan_sum(kept.values())
        normalised = {length: prob / total for length, prob in kept.items()}
        return CategoricalLength(normalised, name=f"{self.name}|L<={max_length}")

    # -- value semantics ---------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PathLengthDistribution):
            return NotImplemented
        mine, theirs = self._pmf(), other._pmf()
        if mine.keys() != theirs.keys():
            return False
        return all(abs(mine[k] - theirs[k]) <= 1e-12 for k in mine)

    def __hash__(self) -> int:
        return hash(tuple((k, round(v, 12)) for k, v in self._pmf().items()))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}({self.name})"


def pmf_sequence_to_dict(probabilities: Sequence[float], offset: int = 0) -> dict[int, float]:
    """Convert a dense probability sequence starting at ``offset`` into a pmf dict."""
    return {offset + i: float(p) for i, p in enumerate(probabilities) if p > 0.0}
