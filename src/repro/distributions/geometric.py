"""Geometric ("coin-flip") path-length distribution.

Crowds and Onion Routing II extend the rerouting path hop by hop: each
intermediate node forwards the message to the receiver with probability
``1 - p_forward`` and to another randomly chosen node with probability
``p_forward``.  The number of intermediate nodes is therefore geometrically
distributed.  Two conventions are supported:

* ``minimum`` hops are always taken before coin flipping starts (Crowds uses
  ``minimum = 1``: the initiator always forwards to at least one jondo);
* the distribution can be truncated to a maximum length, which is required
  when analysing simple paths in a finite system (at most ``N - 1``
  intermediate nodes).
"""

from __future__ import annotations

from collections.abc import Mapping

from repro.distributions.base import PathLengthDistribution
from repro.exceptions import DistributionError
from repro.utils.validation import check_non_negative_int, check_probability

__all__ = ["GeometricLength"]


class GeometricLength(PathLengthDistribution):
    """Geometric number of hops on top of a guaranteed minimum.

    ``Pr[L = minimum + k] = (1 - p_forward) * p_forward**k`` for ``k >= 0``,
    truncated (and renormalised) at ``max_length`` when one is supplied.
    """

    #: When no explicit truncation point is given, the support is cut where
    #: the tail mass drops below this value; the pmf is then renormalised.
    _TAIL_MASS = 1e-12

    def __init__(
        self,
        p_forward: float,
        minimum: int = 1,
        max_length: int | None = None,
    ) -> None:
        super().__init__()
        self._p_forward = check_probability(p_forward, "p_forward")
        if self._p_forward >= 1.0:
            raise DistributionError("p_forward must be < 1 for the path to terminate")
        self._minimum = check_non_negative_int(minimum, "minimum")
        if max_length is not None:
            max_length = check_non_negative_int(max_length, "max_length")
            if max_length < self._minimum:
                raise DistributionError(
                    f"max_length ({max_length}) must be >= minimum ({minimum})"
                )
        self._max_length = max_length

    @property
    def p_forward(self) -> float:
        """Probability that an intermediate node forwards to another node."""
        return self._p_forward

    @property
    def minimum(self) -> int:
        """Number of intermediate hops always taken before coin flipping."""
        return self._minimum

    @property
    def name(self) -> str:
        suffix = "" if self._max_length is None else f", max={self._max_length}"
        return f"Geom(pf={self._p_forward:g}, min={self._minimum}{suffix})"

    def _pmf_map(self) -> Mapping[int, float]:
        stop = 1.0 - self._p_forward
        pmf: dict[int, float] = {}
        if self._max_length is not None:
            horizon = self._max_length
        else:
            # Find the point where the remaining tail is negligible.
            horizon = self._minimum
            tail = 1.0
            while tail > self._TAIL_MASS:
                tail *= self._p_forward
                horizon += 1
        total = 0.0
        for k in range(0, horizon - self._minimum + 1):
            prob = stop * (self._p_forward**k)
            pmf[self._minimum + k] = prob
            total += prob
        # Renormalise the truncated distribution.
        return {length: prob / total for length, prob in pmf.items()}

    def untruncated_mean(self) -> float:
        """Mean of the un-truncated geometric distribution.

        Matches the paper's remark that for Crowds-style strategies "the
        expected route length is completely determined by the weight of
        flipping a coin": ``minimum + p_forward / (1 - p_forward)``.
        """
        return self._minimum + self._p_forward / (1.0 - self._p_forward)
