"""Two-point path-length distribution.

Theorem 2 of the paper analyses the simplest non-degenerate variable-length
strategy: the path length takes one of two values, ``short`` with probability
``p`` and ``long`` with probability ``1 - p``.  It is the minimal setting in
which the trade-off between expectation and variance of the path length can be
studied in closed form.
"""

from __future__ import annotations

from collections.abc import Mapping

from repro.distributions.base import PathLengthDistribution
from repro.exceptions import DistributionError
from repro.utils.validation import check_non_negative_int, check_probability

__all__ = ["TwoPointLength"]


class TwoPointLength(PathLengthDistribution):
    """``Pr[L = short] = p`` and ``Pr[L = long] = 1 - p``."""

    def __init__(self, short: int, long: int, p_short: float) -> None:
        super().__init__()
        self._short = check_non_negative_int(short, "short")
        self._long = check_non_negative_int(long, "long")
        if self._short >= self._long:
            raise DistributionError(
                f"short length ({short}) must be strictly less than long length ({long})"
            )
        self._p_short = check_probability(p_short, "p_short")

    @property
    def short(self) -> int:
        """The smaller of the two possible path lengths."""
        return self._short

    @property
    def long(self) -> int:
        """The larger of the two possible path lengths."""
        return self._long

    @property
    def p_short(self) -> float:
        """Probability assigned to the smaller path length."""
        return self._p_short

    @property
    def name(self) -> str:
        return f"TwoPoint({self._short}:{self._p_short:g}, {self._long}:{1 - self._p_short:g})"

    def _pmf_map(self) -> Mapping[int, float]:
        if self._p_short == 1.0:
            return {self._short: 1.0}
        if self._p_short == 0.0:
            return {self._long: 1.0}
        return {self._short: self._p_short, self._long: 1.0 - self._p_short}

    def mean(self) -> float:
        return self._p_short * self._short + (1.0 - self._p_short) * self._long

    def variance(self) -> float:
        mu = self.mean()
        return (
            self._p_short * (self._short - mu) ** 2
            + (1.0 - self._p_short) * (self._long - mu) ** 2
        )
