"""Path-length distributions: the parameter space of the paper's analysis.

The strategy used by a rerouting-based anonymous communication system is, for
the purposes of the paper, characterised by the probability distribution of
its path length (the number of intermediate nodes).  This subpackage provides
the distributions analysed in the paper (fixed, uniform, two-point) alongside
the distributions induced by deployed protocols (geometric coin flipping for
Crowds / Onion Routing II) and additional parametric families used by the
extension experiments.
"""

from repro.distributions.base import PathLengthDistribution
from repro.distributions.custom import CategoricalLength
from repro.distributions.discrete_families import (
    BinomialLength,
    PoissonLength,
    ZipfLength,
)
from repro.distributions.fixed import FixedLength
from repro.distributions.geometric import GeometricLength
from repro.distributions.two_point import TwoPointLength
from repro.distributions.uniform import UniformLength

__all__ = [
    "PathLengthDistribution",
    "FixedLength",
    "UniformLength",
    "TwoPointLength",
    "GeometricLength",
    "CategoricalLength",
    "PoissonLength",
    "BinomialLength",
    "ZipfLength",
]
