"""Fixed path-length strategy ``F(l)``.

Onion Routing I (five hops), Freedom (three hops), and PipeNet (three or four
hops) all use fixed-length rerouting paths.  In the paper's notation this is
the strategy ``F(l)``: every message traverses exactly ``l`` intermediate
nodes.
"""

from __future__ import annotations

from collections.abc import Mapping

from repro.distributions.base import PathLengthDistribution
from repro.utils.validation import check_non_negative_int

__all__ = ["FixedLength"]


class FixedLength(PathLengthDistribution):
    """Degenerate distribution: ``Pr[L = length] = 1``."""

    def __init__(self, length: int) -> None:
        super().__init__()
        self._length = check_non_negative_int(length, "length")

    @property
    def length(self) -> int:
        """The single path length used by this strategy."""
        return self._length

    @property
    def name(self) -> str:
        return f"F({self._length})"

    def _pmf_map(self) -> Mapping[int, float]:
        return {self._length: 1.0}

    def mean(self) -> float:
        return float(self._length)

    def variance(self) -> float:
        return 0.0
