"""Simulation clock and latency models.

The adversary's tuples are timestamped, and the paper's position-aware
extension corresponds to an adversary able to infer hop positions from those
timestamps.  The latency models here control how much timing structure the
simulated system leaks: a constant per-hop latency leaks positions exactly,
while a heavy-tailed random latency blurs them.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

from repro.exceptions import ConfigurationError
from repro.utils.rng import RandomSource, ensure_rng

__all__ = ["SimulationClock", "LatencyModel", "ConstantLatency", "ExponentialLatency", "UniformLatency"]


@dataclass
class SimulationClock:
    """Monotonically advancing virtual time for the discrete-event engine."""

    now: float = 0.0

    def advance_to(self, timestamp: float) -> None:
        """Move the clock forward; moving backwards is a simulator bug."""
        if timestamp < self.now - 1e-12:
            raise ConfigurationError(
                f"simulation time may not move backwards (now={self.now}, target={timestamp})"
            )
        self.now = max(self.now, timestamp)


class LatencyModel(abc.ABC):
    """Distribution of the one-hop transmission delay."""

    @abc.abstractmethod
    def sample(self, rng: RandomSource = None) -> float:
        """Draw one hop delay (strictly positive)."""


@dataclass(frozen=True)
class ConstantLatency(LatencyModel):
    """Every hop takes exactly ``delay`` time units."""

    delay: float = 1.0

    def __post_init__(self) -> None:
        if self.delay <= 0.0:
            raise ConfigurationError("hop delay must be strictly positive")

    def sample(self, rng: RandomSource = None) -> float:
        return self.delay


@dataclass(frozen=True)
class ExponentialLatency(LatencyModel):
    """Exponentially distributed hop delay with the given mean."""

    mean: float = 1.0

    def __post_init__(self) -> None:
        if self.mean <= 0.0:
            raise ConfigurationError("mean hop delay must be strictly positive")

    def sample(self, rng: RandomSource = None) -> float:
        generator = ensure_rng(rng)
        return float(generator.exponential(self.mean))


@dataclass(frozen=True)
class UniformLatency(LatencyModel):
    """Hop delay drawn uniformly from ``[low, high]``."""

    low: float = 0.5
    high: float = 1.5

    def __post_init__(self) -> None:
        if self.low <= 0.0 or self.high < self.low:
            raise ConfigurationError("latency bounds must satisfy 0 < low <= high")

    def sample(self, rng: RandomSource = None) -> float:
        generator = ensure_rng(rng)
        return float(generator.uniform(self.low, self.high))
