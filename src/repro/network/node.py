"""Participating nodes of the anonymous communication system.

A :class:`Node` is one of the ``N`` participants of the paper's system model.
Nodes are deliberately thin: protocol behaviour lives in
:mod:`repro.protocols`, and the adversary's agents live in
:mod:`repro.adversary.collector`.  A node knows its identity, whether it has
been compromised, its cryptographic key (for the toy onion encryption), and
simple traffic counters that the analysis modules can inspect.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["Node", "NodeRegistry"]


@dataclass
class Node:
    """One participant in the rerouting system."""

    node_id: int
    compromised: bool = False
    #: Symmetric key used by the toy layered-encryption substrate.
    key: bytes | None = None
    #: Number of messages this node has originated.
    sent_count: int = 0
    #: Number of messages this node has forwarded on behalf of others.
    forwarded_count: int = 0

    def on_originate(self) -> None:
        """Bump the origination counter."""
        self.sent_count += 1

    def on_forward(self) -> None:
        """Bump the forwarding counter."""
        self.forwarded_count += 1


@dataclass
class NodeRegistry:
    """The set of ``N`` nodes making up one system instance."""

    nodes: dict[int, Node] = field(default_factory=dict)

    @classmethod
    def create(
        cls, n_nodes: int, compromised: frozenset[int] | set[int] = frozenset()
    ) -> "NodeRegistry":
        """Create ``n_nodes`` nodes, marking the given identities as compromised."""
        compromised = frozenset(compromised)
        nodes = {
            node_id: Node(node_id=node_id, compromised=node_id in compromised)
            for node_id in range(n_nodes)
        }
        return cls(nodes=nodes)

    def __len__(self) -> int:
        return len(self.nodes)

    def __getitem__(self, node_id: int) -> Node:
        return self.nodes[node_id]

    def __iter__(self):
        return iter(self.nodes.values())

    @property
    def node_ids(self) -> list[int]:
        """Sorted node identities."""
        return sorted(self.nodes)

    @property
    def compromised_ids(self) -> frozenset[int]:
        """Identities of compromised nodes."""
        return frozenset(node.node_id for node in self if node.compromised)

    @property
    def honest_ids(self) -> frozenset[int]:
        """Identities of honest nodes."""
        return frozenset(node.node_id for node in self if not node.compromised)

    def total_forwarded(self) -> int:
        """Total number of forwarding operations across all nodes (overhead metric)."""
        return sum(node.forwarded_count for node in self)
