"""Network topologies underlying the rerouting system.

The paper models the network at the transport layer as a clique: every node
can reach every other node directly (possibly through uninteresting IP
routers).  :class:`CliqueTopology` implements that model and is the default
everywhere.  :class:`GraphTopology` generalises to an arbitrary connected
graph (backed by :mod:`networkx`) so that the effect of restricted
connectivity — a real concern for deployed mix networks — can be explored in
the extension experiments.
"""

from __future__ import annotations

import abc
from collections.abc import Iterable, Sequence

import networkx as nx

from repro.exceptions import ConfigurationError

__all__ = ["Topology", "CliqueTopology", "GraphTopology"]


class Topology(abc.ABC):
    """Reachability structure over the node identities ``0 .. N-1``."""

    def __init__(self, n_nodes: int) -> None:
        if n_nodes < 2:
            raise ConfigurationError(f"a topology needs at least 2 nodes, got {n_nodes}")
        self._n_nodes = n_nodes

    @property
    def n_nodes(self) -> int:
        """Number of participating nodes."""
        return self._n_nodes

    @abc.abstractmethod
    def neighbors(self, node: int) -> frozenset[int]:
        """Nodes directly reachable from ``node``."""

    def are_connected(self, source: int, destination: int) -> bool:
        """True when ``destination`` is directly reachable from ``source``."""
        return destination in self.neighbors(source)

    def validate_path(self, sender: int, path: Sequence[int]) -> bool:
        """True when consecutive hops of ``sender -> path`` are all direct links."""
        previous = sender
        for node in path:
            if not self.are_connected(previous, node):
                return False
            previous = node
        return True

    def _check_node(self, node: int) -> None:
        if not 0 <= node < self._n_nodes:
            raise ConfigurationError(
                f"node {node} is outside the valid range [0, {self._n_nodes})"
            )


class CliqueTopology(Topology):
    """Every node can reach every other node directly (the paper's model)."""

    def neighbors(self, node: int) -> frozenset[int]:
        self._check_node(node)
        return frozenset(n for n in range(self._n_nodes) if n != node)


class GraphTopology(Topology):
    """Reachability restricted to the edges of an undirected connected graph."""

    def __init__(self, graph: nx.Graph) -> None:
        nodes = sorted(graph.nodes)
        if nodes != list(range(len(nodes))):
            raise ConfigurationError(
                "GraphTopology requires nodes labelled 0 .. N-1 without gaps"
            )
        if not nx.is_connected(graph):
            raise ConfigurationError("the rerouting topology must be connected")
        super().__init__(len(nodes))
        self._graph = graph.copy()

    @classmethod
    def from_edges(cls, n_nodes: int, edges: Iterable[tuple[int, int]]) -> "GraphTopology":
        """Build a topology from an explicit edge list."""
        graph = nx.Graph()
        graph.add_nodes_from(range(n_nodes))
        graph.add_edges_from(edges)
        return cls(graph)

    @classmethod
    def random_regular(cls, n_nodes: int, degree: int, seed: int | None = None) -> "GraphTopology":
        """A random ``degree``-regular overlay, a common mix-network deployment shape."""
        graph = nx.random_regular_graph(degree, n_nodes, seed=seed)
        graph = nx.relabel_nodes(graph, {node: int(node) for node in graph.nodes})
        return cls(graph)

    @property
    def graph(self) -> nx.Graph:
        """A copy of the underlying graph."""
        return self._graph.copy()

    def neighbors(self, node: int) -> frozenset[int]:
        self._check_node(node)
        return frozenset(int(n) for n in self._graph.neighbors(node))

    def shortest_path_length(self, source: int, destination: int) -> int:
        """Number of overlay hops on the shortest path between two nodes."""
        return int(nx.shortest_path_length(self._graph, source, destination))
