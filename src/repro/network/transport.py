"""Point-to-point transport between nodes.

The transport layer is intentionally simple — the paper abstracts the real
Internet into a clique of reliable links — but it is a real component of the
simulator: it checks reachability against the topology, samples per-hop
latencies, and notifies the adversary coordinator of every forwarding event so
that compromised nodes can file their reports exactly as the threat model
prescribes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.adversary.collector import AdversaryCoordinator
from repro.exceptions import SimulationError
from repro.network.clock import ConstantLatency, LatencyModel, SimulationClock
from repro.network.message import Message
from repro.network.node import NodeRegistry
from repro.network.topology import Topology
from repro.utils.rng import RandomSource, ensure_rng

__all__ = ["Transport", "TransmissionLog"]


@dataclass(frozen=True)
class TransmissionLog:
    """One link-level transmission, kept for overhead accounting and debugging."""

    message_id: int
    source: int
    destination: int | str
    sent_at: float
    arrived_at: float


@dataclass
class Transport:
    """Reliable unicast transport over a topology with a latency model."""

    topology: Topology
    registry: NodeRegistry
    clock: SimulationClock = field(default_factory=SimulationClock)
    latency: LatencyModel = field(default_factory=ConstantLatency)
    adversary: AdversaryCoordinator | None = None
    log: list[TransmissionLog] = field(default_factory=list)

    RECEIVER_ADDRESS = "RECEIVER"

    def send_between_nodes(
        self,
        message: Message,
        source: int,
        destination: int,
        rng: RandomSource = None,
    ) -> float:
        """Deliver ``message`` from one node to another; returns the arrival time."""
        if not self.topology.are_connected(source, destination):
            raise SimulationError(
                f"node {source} cannot reach node {destination} on this topology"
            )
        return self._transmit(message, source, destination, rng)

    def send_to_receiver(self, message: Message, source: int, rng: RandomSource = None) -> float:
        """Deliver ``message`` from a node to the (external) receiver."""
        return self._transmit(message, source, self.RECEIVER_ADDRESS, rng)

    def _transmit(
        self,
        message: Message,
        source: int,
        destination: int | str,
        rng: RandomSource,
    ) -> float:
        generator = ensure_rng(rng)
        sent_at = self.clock.now
        arrival = sent_at + self.latency.sample(generator)
        self.clock.advance_to(arrival)
        self.log.append(
            TransmissionLog(
                message_id=message.message_id,
                source=source,
                destination=destination,
                sent_at=sent_at,
                arrived_at=arrival,
            )
        )
        return arrival

    @property
    def transmissions(self) -> int:
        """Total number of link-level transmissions (the paper's overhead concern)."""
        return len(self.log)
