"""Network substrate: nodes, topologies, messages, clocks, and transport."""

from repro.network.clock import (
    ConstantLatency,
    ExponentialLatency,
    LatencyModel,
    SimulationClock,
    UniformLatency,
)
from repro.network.message import DeliveryRecord, Message
from repro.network.node import Node, NodeRegistry
from repro.network.topology import CliqueTopology, GraphTopology, Topology
from repro.network.transport import Transport, TransmissionLog

__all__ = [
    "Node",
    "NodeRegistry",
    "Message",
    "DeliveryRecord",
    "Topology",
    "CliqueTopology",
    "GraphTopology",
    "SimulationClock",
    "LatencyModel",
    "ConstantLatency",
    "ExponentialLatency",
    "UniformLatency",
    "Transport",
    "TransmissionLog",
]
