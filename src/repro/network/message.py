"""Messages carried by the simulated anonymous communication system.

A :class:`Message` models the unit of traffic at the transport layer: an
opaque payload plus the minimal routing state needed by the rerouting
protocols (the remaining route for source-routed systems such as Onion
Routing and Freedom, or nothing at all for hop-by-hop systems such as
Crowds).  Payloads may be wrapped in the toy layered encryption from
:mod:`repro.crypto` so that each hop only learns its immediate neighbours,
mirroring the real systems' message formats.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any

__all__ = ["Message", "DeliveryRecord"]

_message_counter = itertools.count()


@dataclass
class Message:
    """One end-to-end message travelling through the system.

    Attributes
    ----------
    message_id:
        Unique identifier assigned at creation time; the adversary uses it to
        correlate sightings of the same message (the paper's assumption that
        messages traversing compromised nodes can be correlated).
    sender:
        Identity of the originating node.
    payload:
        Application payload (opaque to the library).
    onion:
        Optional layered-encryption envelope (see :mod:`repro.crypto.onion`).
    route:
        For source-routed protocols, the remaining intermediate nodes to
        traverse; hop-by-hop protocols leave it empty and decide dynamically.
    hops_taken:
        The intermediate nodes traversed so far (filled in by the simulator).
    metadata:
        Free-form per-protocol annotations (e.g. the Crowds coin-flip trace).
    """

    sender: int
    payload: Any = None
    onion: Any = None
    route: list[int] = field(default_factory=list)
    hops_taken: list[int] = field(default_factory=list)
    metadata: dict[str, Any] = field(default_factory=dict)
    message_id: int = field(default_factory=lambda: next(_message_counter))

    @property
    def path_length_so_far(self) -> int:
        """Number of intermediate nodes traversed so far."""
        return len(self.hops_taken)

    def record_hop(self, node: int) -> None:
        """Note that ``node`` forwarded this message."""
        self.hops_taken.append(node)


@dataclass(frozen=True)
class DeliveryRecord:
    """Summary of one completed delivery, produced by the simulator."""

    message_id: int
    sender: int
    path: tuple[int, ...]
    delivered_at: float
    protocol: str

    @property
    def path_length(self) -> int:
        """Number of intermediate nodes the message traversed."""
        return len(self.path)
