"""Anonymity metrics beyond the paper's ``H*(S)``.

The paper measures anonymity as the expected Shannon entropy of the
adversary's posterior (the *anonymity degree*).  Follow-up literature proposed
several related measures; they are included here because they are cheap to
compute from the same posteriors and because the extension benchmarks use them
to show that the paper's qualitative findings (short-path and long-path
effects, fixed vs. variable length) are not artefacts of the particular choice
of entropy:

* **normalized degree of anonymity** (Diaz et al. / Serjantov & Danezis):
  ``H / log2(N)`` in ``[0, 1]``;
* **min-entropy** ``-log2(max_i p_i)``: worst-case guessing security;
* **guessing entropy**: expected number of guesses needed to hit the sender;
* **effective anonymity-set size**: ``2**H``, the "equivalent number of
  equally likely senders";
* **probable innocence**: Reiter & Rubin's criterion that no candidate is more
  likely than not to be the sender;
* **Gini coefficient** and **normalized entropy** over observed load or
  selection counts (empirical-measurement idiom, following the navigator
  anonymity-metrics tooling): how evenly the rerouting traffic spreads over
  the nodes, which bounds how much an adversary learns from volume alone.
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Mapping, Sequence

from repro.utils.mathx import entropy_bits

__all__ = [
    "normalized_degree",
    "min_entropy_bits",
    "max_posterior",
    "guessing_entropy",
    "effective_set_size",
    "probable_innocence",
    "posterior_metrics",
    "gini_coefficient",
    "normalized_entropy",
]


def _as_probabilities(posterior: Mapping[int, float] | Sequence[float]) -> list[float]:
    if isinstance(posterior, Mapping):
        values = list(posterior.values())
    else:
        values = list(posterior)
    return [float(p) for p in values if p > 0.0]


def normalized_degree(entropy_bits_value: float, n_nodes: int) -> float:
    """Anonymity degree normalised by its maximum ``log2(N)``."""
    if n_nodes <= 1:
        return 0.0
    return entropy_bits_value / math.log2(n_nodes)


def max_posterior(posterior: Mapping[int, float] | Sequence[float]) -> float:
    """The adversary's best single-guess success probability."""
    probabilities = _as_probabilities(posterior)
    return max(probabilities) if probabilities else 0.0


def min_entropy_bits(posterior: Mapping[int, float] | Sequence[float]) -> float:
    """Min-entropy ``-log2(max_i p_i)`` of the posterior."""
    top = max_posterior(posterior)
    if top <= 0.0:
        return 0.0
    return -math.log2(top)


def guessing_entropy(posterior: Mapping[int, float] | Sequence[float]) -> float:
    """Expected number of guesses to identify the sender (Massey's guessing entropy)."""
    probabilities = sorted(_as_probabilities(posterior), reverse=True)
    return sum((rank + 1) * p for rank, p in enumerate(probabilities))


def effective_set_size(posterior: Mapping[int, float] | Sequence[float]) -> float:
    """``2**H``: the number of equally likely senders that would give the same entropy."""
    probabilities = _as_probabilities(posterior)
    if not probabilities:
        return 0.0
    return 2.0 ** entropy_bits(probabilities)


def probable_innocence(posterior: Mapping[int, float] | Sequence[float]) -> bool:
    """True when no candidate is more likely than not to be the sender (p_max <= 1/2)."""
    return max_posterior(posterior) <= 0.5


def gini_coefficient(values: Iterable[float]) -> float:
    """Gini coefficient of a set of non-negative counts or weights.

    ``0.0`` means the quantity (e.g. forwarding load, selection frequency) is
    spread perfectly evenly over the population; values approaching ``1.0``
    mean it concentrates on a few members — exactly the signal a traffic
    adversary exploits.  Pure Python (sorted-rank formula), no statistical
    runtime required; empty input returns ``0.0`` by convention.
    """
    sorted_values = sorted(float(v) for v in values)
    n = len(sorted_values)
    if n == 0:
        return 0.0
    if any(v < 0.0 for v in sorted_values):
        raise ValueError("gini_coefficient requires non-negative values")
    total = sum(sorted_values)
    if total <= 0.0:
        return 0.0
    weighted = sum((2 * rank - n - 1) * v for rank, v in enumerate(sorted_values, 1))
    return weighted / (n * total)


def normalized_entropy(values: Iterable[float], base_count: int | None = None) -> float:
    """Shannon entropy of a count/weight vector, normalised into ``[0, 1]``.

    The values are normalised into a probability vector and the entropy is
    divided by ``log2(base_count)``; ``base_count`` defaults to the number of
    positive entries, so a perfectly even spread scores ``1.0`` and full
    concentration on one member scores ``0.0``.  Pass an explicit
    ``base_count`` (e.g. the total population size ``N``) to measure evenness
    against a fixed reference instead of the observed support.

    The degenerate one-member case — ``base_count=1``, whether passed
    explicitly or defaulted from a single positive entry — returns ``0.0``
    rather than dividing by ``log2(1) == 0``: a population of one has no
    spread to measure.  Empty or all-zero input likewise returns ``0.0``.
    """
    as_floats = [float(v) for v in values]
    if any(v < 0.0 for v in as_floats):
        raise ValueError("normalized_entropy requires non-negative values")
    positives = [v for v in as_floats if v > 0.0]
    if base_count is None:
        base_count = len(positives)
    elif base_count < len(positives):
        raise ValueError(
            f"base_count ({base_count}) must cover the {len(positives)} members "
            "with positive weight, or the result would exceed 1"
        )
    if base_count <= 1 or not positives:
        return 0.0
    total = sum(positives)
    shannon = entropy_bits([v / total for v in positives])
    return shannon / math.log2(base_count)


def posterior_metrics(
    posterior: Mapping[int, float] | Sequence[float], n_nodes: int
) -> dict[str, float]:
    """Bundle of every per-posterior metric, keyed by metric name."""
    probabilities = _as_probabilities(posterior)
    shannon = entropy_bits(probabilities)
    return {
        "entropy_bits": shannon,
        "normalized_degree": normalized_degree(shannon, n_nodes),
        "min_entropy_bits": min_entropy_bits(probabilities),
        "max_posterior": max_posterior(probabilities),
        "guessing_entropy": guessing_entropy(probabilities),
        "effective_set_size": effective_set_size(probabilities),
        "probable_innocence": float(probable_innocence(probabilities)),
    }
