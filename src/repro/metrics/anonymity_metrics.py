"""Anonymity metrics beyond the paper's ``H*(S)``.

The paper measures anonymity as the expected Shannon entropy of the
adversary's posterior (the *anonymity degree*).  Follow-up literature proposed
several related measures; they are included here because they are cheap to
compute from the same posteriors and because the extension benchmarks use them
to show that the paper's qualitative findings (short-path and long-path
effects, fixed vs. variable length) are not artefacts of the particular choice
of entropy:

* **normalized degree of anonymity** (Diaz et al. / Serjantov & Danezis):
  ``H / log2(N)`` in ``[0, 1]``;
* **min-entropy** ``-log2(max_i p_i)``: worst-case guessing security;
* **guessing entropy**: expected number of guesses needed to hit the sender;
* **effective anonymity-set size**: ``2**H``, the "equivalent number of
  equally likely senders";
* **probable innocence**: Reiter & Rubin's criterion that no candidate is more
  likely than not to be the sender.
"""

from __future__ import annotations

import math
from collections.abc import Mapping, Sequence

from repro.utils.mathx import entropy_bits

__all__ = [
    "normalized_degree",
    "min_entropy_bits",
    "max_posterior",
    "guessing_entropy",
    "effective_set_size",
    "probable_innocence",
    "posterior_metrics",
]


def _as_probabilities(posterior: Mapping[int, float] | Sequence[float]) -> list[float]:
    if isinstance(posterior, Mapping):
        values = list(posterior.values())
    else:
        values = list(posterior)
    return [float(p) for p in values if p > 0.0]


def normalized_degree(entropy_bits_value: float, n_nodes: int) -> float:
    """Anonymity degree normalised by its maximum ``log2(N)``."""
    if n_nodes <= 1:
        return 0.0
    return entropy_bits_value / math.log2(n_nodes)


def max_posterior(posterior: Mapping[int, float] | Sequence[float]) -> float:
    """The adversary's best single-guess success probability."""
    probabilities = _as_probabilities(posterior)
    return max(probabilities) if probabilities else 0.0


def min_entropy_bits(posterior: Mapping[int, float] | Sequence[float]) -> float:
    """Min-entropy ``-log2(max_i p_i)`` of the posterior."""
    top = max_posterior(posterior)
    if top <= 0.0:
        return 0.0
    return -math.log2(top)


def guessing_entropy(posterior: Mapping[int, float] | Sequence[float]) -> float:
    """Expected number of guesses to identify the sender (Massey's guessing entropy)."""
    probabilities = sorted(_as_probabilities(posterior), reverse=True)
    return sum((rank + 1) * p for rank, p in enumerate(probabilities))


def effective_set_size(posterior: Mapping[int, float] | Sequence[float]) -> float:
    """``2**H``: the number of equally likely senders that would give the same entropy."""
    probabilities = _as_probabilities(posterior)
    if not probabilities:
        return 0.0
    return 2.0 ** entropy_bits(probabilities)


def probable_innocence(posterior: Mapping[int, float] | Sequence[float]) -> bool:
    """True when no candidate is more likely than not to be the sender (p_max <= 1/2)."""
    return max_posterior(posterior) <= 0.5


def posterior_metrics(
    posterior: Mapping[int, float] | Sequence[float], n_nodes: int
) -> dict[str, float]:
    """Bundle of every per-posterior metric, keyed by metric name."""
    probabilities = _as_probabilities(posterior)
    shannon = entropy_bits(probabilities)
    return {
        "entropy_bits": shannon,
        "normalized_degree": normalized_degree(shannon, n_nodes),
        "min_entropy_bits": min_entropy_bits(probabilities),
        "max_posterior": max_posterior(probabilities),
        "guessing_entropy": guessing_entropy(probabilities),
        "effective_set_size": effective_set_size(probabilities),
        "probable_innocence": float(probable_innocence(probabilities)),
    }
