"""Anonymity metrics computed from adversary posteriors."""

from repro.metrics.anonymity_metrics import (
    effective_set_size,
    gini_coefficient,
    guessing_entropy,
    max_posterior,
    min_entropy_bits,
    normalized_degree,
    normalized_entropy,
    posterior_metrics,
    probable_innocence,
)

__all__ = [
    "normalized_degree",
    "min_entropy_bits",
    "max_posterior",
    "guessing_entropy",
    "effective_set_size",
    "probable_innocence",
    "posterior_metrics",
    "gini_coefficient",
    "normalized_entropy",
]
