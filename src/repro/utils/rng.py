"""Random-number handling.

Every stochastic component in the library (path sampling, Monte-Carlo
experiments, the discrete-event simulator, protocol implementations) accepts
either an explicit :class:`numpy.random.Generator`, an integer seed, or
``None``.  :func:`ensure_rng` converts any of those into a concrete generator
so experiments are reproducible end to end: pass the same seed, get the same
paths, observations, and estimates.
"""

from __future__ import annotations

from typing import Union

import numpy as np

__all__ = ["RandomSource", "ensure_rng", "spawn_child_rng"]

#: Anything acceptable as a source of randomness in public APIs.
RandomSource = Union[None, int, np.random.Generator]


def ensure_rng(source: RandomSource = None) -> np.random.Generator:
    """Coerce ``source`` into a :class:`numpy.random.Generator`.

    ``None`` produces a fresh non-deterministic generator, an ``int`` seeds a
    new PCG64 generator, and an existing generator is returned unchanged.
    """
    if source is None:
        return np.random.default_rng()
    if isinstance(source, np.random.Generator):
        return source
    if isinstance(source, (int, np.integer)):
        return np.random.default_rng(int(source))
    raise TypeError(
        "random source must be None, an int seed, or a numpy Generator, "
        f"got {type(source).__name__}"
    )


def spawn_child_rng(rng: np.random.Generator) -> np.random.Generator:
    """Derive an independent child generator from ``rng``.

    Used when an experiment fans out into parallel sub-experiments (e.g. one
    Monte-Carlo stream per parameter value) so that each stream is independent
    yet fully determined by the parent seed.
    """
    seed = int(rng.integers(0, 2**63 - 1))
    return np.random.default_rng(seed)
