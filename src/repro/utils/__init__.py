"""Small shared utilities: math helpers, RNG handling, validation, tables."""

from repro.utils.env import environment_fingerprint, environment_key
from repro.utils.mathx import (
    entropy_bits,
    falling_factorial,
    log2_safe,
    normalize,
    xlog2x,
)
from repro.utils.rng import RandomSource, ensure_rng
from repro.utils.validation import (
    check_non_negative_int,
    check_positive_int,
    check_probability,
    check_range,
)

__all__ = [
    "environment_fingerprint",
    "environment_key",
    "entropy_bits",
    "falling_factorial",
    "log2_safe",
    "normalize",
    "xlog2x",
    "RandomSource",
    "ensure_rng",
    "check_non_negative_int",
    "check_positive_int",
    "check_probability",
    "check_range",
]
