"""Argument-validation helpers.

The public API is meant to fail fast with clear messages when a caller builds
an inconsistent model (for instance a system with more compromised nodes than
nodes).  These helpers keep the validation one-liners readable at call sites.
"""

from __future__ import annotations

from repro.exceptions import ConfigurationError

__all__ = [
    "check_positive_int",
    "check_non_negative_int",
    "check_probability",
    "check_range",
]


def check_positive_int(value: int, name: str) -> int:
    """Ensure ``value`` is an integer >= 1 and return it."""
    if not isinstance(value, int) or isinstance(value, bool):
        raise ConfigurationError(f"{name} must be an int, got {type(value).__name__}")
    if value < 1:
        raise ConfigurationError(f"{name} must be >= 1, got {value}")
    return value


def check_non_negative_int(value: int, name: str) -> int:
    """Ensure ``value`` is an integer >= 0 and return it."""
    if not isinstance(value, int) or isinstance(value, bool):
        raise ConfigurationError(f"{name} must be an int, got {type(value).__name__}")
    if value < 0:
        raise ConfigurationError(f"{name} must be >= 0, got {value}")
    return value


def check_probability(value: float, name: str) -> float:
    """Ensure ``value`` lies in the closed interval [0, 1] and return it as float."""
    value = float(value)
    if not 0.0 <= value <= 1.0:
        raise ConfigurationError(f"{name} must lie in [0, 1], got {value}")
    return value


def check_range(low: int, high: int, low_name: str, high_name: str) -> tuple[int, int]:
    """Ensure ``low <= high`` for a pair of integer bounds and return them."""
    low = check_non_negative_int(low, low_name)
    high = check_non_negative_int(high, high_name)
    if low > high:
        raise ConfigurationError(
            f"{low_name} ({low}) must not exceed {high_name} ({high})"
        )
    return low, high
