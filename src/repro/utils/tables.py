"""Plain-text table rendering for benchmark and CLI output.

The benchmark harness regenerates the data series behind every figure of the
paper and prints them as aligned text tables so the run log doubles as the
reproduction record (see EXPERIMENTS.md).  No plotting dependency is required.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

__all__ = ["format_table", "format_series"]


def _format_cell(value: object, precision: int) -> str:
    if isinstance(value, float):
        return f"{value:.{precision}f}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    precision: int = 4,
    title: str | None = None,
) -> str:
    """Render ``rows`` under ``headers`` as an aligned monospace table."""
    rendered_rows = [[_format_cell(cell, precision) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        for index, cell in enumerate(row):
            if index < len(widths):
                widths[index] = max(widths[index], len(cell))
            else:
                widths.append(len(cell))

    def render_line(cells: Sequence[str]) -> str:
        return "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(cells))

    lines = []
    if title:
        lines.append(title)
    lines.append(render_line(list(headers)))
    lines.append(render_line(["-" * w for w in widths]))
    lines.extend(render_line(row) for row in rendered_rows)
    return "\n".join(lines)


def format_series(
    x_label: str,
    x_values: Sequence[object],
    series: dict[str, Sequence[float]],
    precision: int = 4,
    title: str | None = None,
) -> str:
    """Render one or more named series sharing the same x axis as a table."""
    headers = [x_label, *series.keys()]
    rows = []
    for index, x in enumerate(x_values):
        row: list[object] = [x]
        for values in series.values():
            row.append(values[index])
        rows.append(row)
    return format_table(headers, rows, precision=precision, title=title)
