"""Numeric helpers used across the analytical engines.

The anonymity-degree computations in :mod:`repro.core` reduce to manipulating
small probability vectors, falling factorials, and Shannon entropies.  The
helpers here centralise the numerically delicate parts (``0 * log 0``,
normalisation of near-zero vectors, exact integer falling factorials) so the
higher-level code can stay readable.
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Sequence

__all__ = [
    "falling_factorial",
    "log2_safe",
    "xlog2x",
    "entropy_bits",
    "normalize",
    "binomial",
    "compositions_count",
    "kahan_sum",
]


def falling_factorial(n: int, k: int) -> int:
    """Return the falling factorial ``n * (n-1) * ... * (n-k+1)``.

    The convention used throughout the library:

    * ``falling_factorial(n, 0) == 1`` for every ``n`` (the empty product),
    * the result is ``0`` whenever ``k > n`` or any factor would be
      non-positive, which encodes "there is no way to choose an ordered
      sequence of ``k`` distinct items from ``n``",
    * negative ``k`` is a caller bug and raises ``ValueError``.

    The computation is exact (Python integers), which matters because the
    Bayesian likelihood ratios in :mod:`repro.core.anonymity` are ratios of
    falling factorials of potentially large arguments.
    """
    if k < 0:
        raise ValueError(f"falling_factorial requires k >= 0, got k={k}")
    if k == 0:
        return 1
    if n < k:
        return 0
    result = 1
    for offset in range(k):
        result *= n - offset
    return result


def binomial(n: int, k: int) -> int:
    """Return the binomial coefficient ``C(n, k)`` with C(n, k) = 0 for k > n or k < 0."""
    if k < 0 or n < 0 or k > n:
        return 0
    return math.comb(n, k)


def compositions_count(total: int, parts: int) -> int:
    """Number of ways to write ``total`` as an ordered sum of ``parts`` non-negative integers.

    This is the "stars and bars" count ``C(total + parts - 1, parts - 1)``.
    When ``parts == 0`` the answer is ``1`` if ``total == 0`` (the empty
    composition) and ``0`` otherwise.  Used by the arrangement counter in
    :mod:`repro.combinatorics.arrangements` to distribute unobserved hops into
    the gaps between observed path fragments.
    """
    if parts < 0 or total < 0:
        return 0
    if parts == 0:
        return 1 if total == 0 else 0
    return math.comb(total + parts - 1, parts - 1)


def log2_safe(x: float) -> float:
    """Return ``log2(x)``, mapping ``x <= 0`` to ``0.0``.

    The convention ``0 * log 0 = 0`` from information theory is implemented by
    :func:`xlog2x`; this helper only exists for call sites that have already
    checked positivity but may see exact zeros due to floating-point
    cancellation.
    """
    if x <= 0.0:
        return 0.0
    return math.log2(x)


def xlog2x(x: float) -> float:
    """Return ``x * log2(x)`` with the information-theoretic convention ``0 log 0 = 0``."""
    if x <= 0.0:
        return 0.0
    return x * math.log2(x)


def kahan_sum(values: Iterable[float]) -> float:
    """Compensated (Kahan) summation of an iterable of floats.

    Event probabilities in the exact enumeration engine can differ by many
    orders of magnitude; compensated summation keeps the total close to the
    mathematically exact value so the "probabilities sum to one" invariants in
    the test suite hold tightly.
    """
    total = 0.0
    compensation = 0.0
    for value in values:
        y = value - compensation
        t = total + y
        compensation = (t - total) - y
        total = t
    return total


def normalize(weights: Sequence[float]) -> list[float]:
    """Normalise a vector of non-negative weights into a probability vector.

    Raises ``ValueError`` when every weight is zero (there is no probability
    vector to speak of) or when any weight is negative.
    """
    total = kahan_sum(weights)
    if total <= 0.0:
        raise ValueError("cannot normalise a weight vector that sums to zero")
    for w in weights:
        if w < 0.0:
            raise ValueError(f"weights must be non-negative, got {w!r}")
    return [w / total for w in weights]


def entropy_bits(probabilities: Sequence[float]) -> float:
    """Shannon entropy (base 2) of a probability vector, in bits.

    The vector is expected to be (approximately) normalised; tiny negative
    values and tiny normalisation drift caused by floating-point arithmetic
    are tolerated.  The convention ``0 log 0 = 0`` is applied term-wise.
    """
    return -kahan_sum(xlog2x(p) for p in probabilities if p > 0.0)
