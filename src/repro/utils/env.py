"""Environment fingerprinting: which interpreter/machine produced a number.

Every durable observability artifact — telemetry snapshots, run-ledger
records, ``BENCH_*.json`` perf records and the ``BENCH_history.jsonl``
trajectory — embeds the same small fingerprint so numbers from different
machines or interpreters are never compared as if they were comparable.
"""

from __future__ import annotations

import platform
import sys

from repro._version import __version__

__all__ = ["environment_fingerprint", "environment_key"]


def environment_fingerprint() -> dict:
    """The interpreter/machine/package block stamped into saved artifacts."""
    return {
        "python": sys.version.split()[0],
        "platform": platform.platform(),
        "repro_version": __version__,
    }


def environment_key(environment: dict | None = None) -> str:
    """A stable one-line identity for grouping records by environment.

    Perf-trajectory tooling (``compare_bench.py --trend``) groups history
    entries by this key so a laptop's numbers never gate a CI runner's.
    """
    if environment is None:
        environment = environment_fingerprint()
    return "|".join(
        f"{key}={environment[key]}" for key in sorted(environment)
    )
