"""Simulated cryptographic substrate (toy cipher, key directory, onion envelopes).

Nothing in this package is cryptographically secure; it exists so the protocol
simulations exercise realistic message structures (per-hop keys, layered
envelopes, fixed-size cells) while the paper's traffic-analysis results remain
purely information-theoretic.
"""

from repro.crypto.keys import KeyDirectory
from repro.crypto.onion import Onion, OnionLayer, build_onion, peel_layer
from repro.crypto.toy_cipher import (
    authenticate,
    decrypt,
    derive_key,
    encrypt,
    keystream,
    verify,
)

__all__ = [
    "KeyDirectory",
    "Onion",
    "OnionLayer",
    "build_onion",
    "peel_layer",
    "encrypt",
    "decrypt",
    "keystream",
    "derive_key",
    "authenticate",
    "verify",
]
