"""Key management for the simulated onion / mix message formats.

Every node in the simulated system owns a long-term symmetric key.  Senders
building onion envelopes look the keys up in a :class:`KeyDirectory` — the
stand-in for the public-key directory that Onion Routing, Freedom, and mix
networks publish.  Compromise of a node hands its key to the adversary, but
note that the paper's traffic-analysis adversary never needs keys: everything
it uses is routing metadata.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.crypto.toy_cipher import derive_key
from repro.exceptions import ConfigurationError

__all__ = ["KeyDirectory"]


@dataclass
class KeyDirectory:
    """Directory mapping node identities to their long-term symmetric keys."""

    keys: dict[int, bytes] = field(default_factory=dict)

    @classmethod
    def generate(cls, n_nodes: int, seed: bytes = b"repro-key-directory") -> "KeyDirectory":
        """Deterministically derive one key per node (reproducible test fixtures)."""
        return cls(
            keys={node: derive_key(seed, f"node-{node}") for node in range(n_nodes)}
        )

    def key_for(self, node: int) -> bytes:
        """Return the key of ``node``; unknown nodes are a configuration error."""
        try:
            return self.keys[node]
        except KeyError as exc:
            raise ConfigurationError(f"no key registered for node {node}") from exc

    def register(self, node: int, key: bytes) -> None:
        """Register (or replace) the key of one node."""
        if len(key) < 16:
            raise ConfigurationError("node keys must be at least 16 bytes")
        self.keys[node] = key

    def __len__(self) -> int:
        return len(self.keys)
