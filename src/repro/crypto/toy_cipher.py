"""Toy symmetric cipher used by the simulated onion message format.

The paper's analysis is information-theoretic: it assumes the cryptographic
transformations of mixes and onion routers are perfect and concentrates on
traffic analysis.  The simulator nevertheless builds real (nested) message
envelopes so the protocol implementations exercise the same code paths as the
deployed systems — construct layers at the sender, peel one layer per hop —
and so tests can assert that honest nodes never see more than their own layer.

The cipher itself is a keystream XOR driven by Python's SHA-256; it is
**deliberately not cryptographically secure** and must never be used outside
this simulation.  What matters for the reproduction is the *structure*
(per-hop keys, nested envelopes, length padding), not the cryptographic
strength.
"""

from __future__ import annotations

import hashlib
import hmac

from repro.exceptions import ProtocolError

__all__ = ["keystream", "encrypt", "decrypt", "derive_key", "authenticate", "verify"]

_BLOCK = 32  # SHA-256 digest size


def derive_key(seed: bytes, label: str) -> bytes:
    """Derive a per-purpose key from a seed (e.g. per-node keys from a test seed)."""
    return hashlib.sha256(seed + b"|" + label.encode("utf-8")).digest()


def keystream(key: bytes, nonce: bytes, length: int) -> bytes:
    """Deterministic keystream of ``length`` bytes from ``(key, nonce)``."""
    if length < 0:
        raise ProtocolError("keystream length must be non-negative")
    blocks = []
    counter = 0
    produced = 0
    while produced < length:
        block = hashlib.sha256(key + nonce + counter.to_bytes(8, "big")).digest()
        blocks.append(block)
        produced += len(block)
        counter += 1
    return b"".join(blocks)[:length]


def encrypt(key: bytes, nonce: bytes, plaintext: bytes) -> bytes:
    """XOR the plaintext with the keystream (symmetric: encrypt == decrypt)."""
    stream = keystream(key, nonce, len(plaintext))
    return bytes(p ^ s for p, s in zip(plaintext, stream))


def decrypt(key: bytes, nonce: bytes, ciphertext: bytes) -> bytes:
    """Inverse of :func:`encrypt` (the cipher is an involution)."""
    return encrypt(key, nonce, ciphertext)


def authenticate(key: bytes, data: bytes) -> bytes:
    """Compute a MAC over ``data`` (HMAC-SHA256, truncated to 16 bytes)."""
    return hmac.new(key, data, hashlib.sha256).digest()[:16]


def verify(key: bytes, data: bytes, tag: bytes) -> bool:
    """Constant-time verification of a MAC produced by :func:`authenticate`."""
    return hmac.compare_digest(authenticate(key, data), tag)
