"""Layered ("onion") message envelopes.

Onion Routing, Freedom, PipeNet, and Chaum mixes all wrap a message in one
encryption layer per hop: each intermediate node peels its own layer, learns
only the next hop, and forwards the rest.  The classes here implement that
structure on top of the toy cipher so that:

* the simulated protocols construct and process byte-level envelopes exactly
  like their real counterparts (build at the sender, peel per hop, deliver the
  innermost payload to the receiver);
* tests can assert the key privacy property the construction is meant to give
  — an intermediate node learns its predecessor and successor and nothing
  else — which is precisely the observation granted to compromised nodes in
  the paper's threat model.

Each layer is a small binary frame: a MAC tag, then the encryption of
``next_hop || inner``.  Envelope size therefore grows linearly with the number
of layers; deployed systems additionally pad to fixed-size cells so length
does not reveal the remaining path length, but the paper's adversary does not
use message sizes, so the padding step is omitted here and noted in DESIGN.md.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

from repro.crypto.keys import KeyDirectory
from repro.crypto.toy_cipher import authenticate, decrypt, encrypt, verify
from repro.exceptions import ProtocolError

__all__ = ["OnionLayer", "Onion", "build_onion", "peel_layer"]

_NONCE = b"repro-onion-nonce"
_RECEIVER_MARKER = 0xFFFFFFFF
_TAG_SIZE = 16
_HEADER_SIZE = 4


@dataclass(frozen=True)
class OnionLayer:
    """The information revealed to one hop after peeling its layer."""

    next_hop: int | None  # ``None`` means "deliver to the receiver"
    remaining: bytes  # the envelope to forward (opaque to this hop)
    payload: object | None  # only set at the innermost layer


@dataclass(frozen=True)
class Onion:
    """A fully built layered envelope ready to hand to the first hop."""

    envelope: bytes
    first_hop: int

    def __len__(self) -> int:
        return len(self.envelope)


def _seal(key: bytes, next_hop: int, inner: bytes) -> bytes:
    plaintext = next_hop.to_bytes(_HEADER_SIZE, "big") + inner
    ciphertext = encrypt(key, _NONCE, plaintext)
    tag = authenticate(key, ciphertext)
    return tag + ciphertext


def build_onion(
    route: list[int],
    payload: object,
    directory: KeyDirectory,
) -> Onion:
    """Wrap ``payload`` in one encryption layer per node of ``route``.

    The route lists the intermediate nodes in forwarding order; the innermost
    layer marks delivery to the receiver.  Raises when the route is empty —
    a direct send needs no onion.
    """
    if not route:
        raise ProtocolError("an onion requires at least one intermediate node")

    # Innermost content: the application payload destined for the receiver.
    payload_bytes = json.dumps({"payload": payload}).encode("utf-8")
    envelope = _seal(directory.key_for(route[-1]), _RECEIVER_MARKER, payload_bytes)

    # Wrap outwards: each earlier node learns only the identity of the next.
    for position in range(len(route) - 2, -1, -1):
        node = route[position]
        next_hop = route[position + 1]
        envelope = _seal(directory.key_for(node), next_hop, envelope)

    return Onion(envelope=envelope, first_hop=route[0])


def peel_layer(node: int, envelope: bytes, directory: KeyDirectory) -> OnionLayer:
    """Peel the layer addressed to ``node`` and reveal the next hop.

    Raises :class:`ProtocolError` when the envelope was not built for this
    node (wrong key) — which is also what keeps honest-but-curious nodes from
    opening layers that are not theirs.
    """
    key = directory.key_for(node)
    if len(envelope) < _TAG_SIZE + _HEADER_SIZE:
        raise ProtocolError("onion envelope too short")
    tag, ciphertext = envelope[:_TAG_SIZE], envelope[_TAG_SIZE:]
    if not verify(key, ciphertext, tag):
        raise ProtocolError(f"node {node} cannot authenticate this onion layer")
    plaintext = decrypt(key, _NONCE, ciphertext)
    next_hop = int.from_bytes(plaintext[:_HEADER_SIZE], "big")
    inner = plaintext[_HEADER_SIZE:]

    if next_hop == _RECEIVER_MARKER:
        try:
            content = json.loads(inner.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ProtocolError("corrupt innermost onion layer") from exc
        return OnionLayer(next_hop=None, remaining=b"", payload=content["payload"])
    return OnionLayer(next_hop=next_hop, remaining=inner, payload=None)
