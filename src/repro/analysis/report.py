"""Plain-text report rendering for sweeps, comparisons, and experiments.

Every benchmark prints its regenerated data series through these helpers so
that the benchmark log itself is the reproduction artefact (EXPERIMENTS.md is
assembled from it).  The renderers work on the plain data containers produced
by :mod:`repro.analysis.sweep` and :mod:`repro.analysis.compare`; nothing here
depends on a plotting library.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.analysis.compare import StrategyComparison
from repro.analysis.sweep import SweepResult
from repro.core.anonymity import AnonymityResult
from repro.utils.tables import format_series, format_table

__all__ = ["render_sweep", "render_comparison", "render_event_breakdown", "render_key_points"]


def render_sweep(result: SweepResult, title: str | None = None, precision: int = 4) -> str:
    """Render a sweep as an aligned text table (one column per curve)."""
    return format_series(
        x_label=result.x_label,
        x_values=[f"{x:g}" for x in result.x_values],
        series=result.as_dict(),
        precision=precision,
        title=title,
    )


def render_comparison(
    rows: Sequence[StrategyComparison], title: str | None = None
) -> str:
    """Render a strategy comparison as a ranked table."""
    headers = ("strategy", "length distribution", "E[L]", "H*(S) bits", "normalized")
    return format_table(headers, [row.as_row() for row in rows], precision=4, title=title)


def render_event_breakdown(result: AnonymityResult, title: str | None = None) -> str:
    """Render the per-observation-class breakdown of one anonymity computation."""
    headers = ("event class", "probability", "H(S|E) bits", "support", "max posterior", "contribution")
    rows = [
        (
            summary.event.value,
            summary.probability,
            summary.entropy_bits,
            summary.posterior_support,
            summary.top_posterior,
            summary.contribution_bits,
        )
        for summary in result.events
    ]
    body = format_table(headers, rows, precision=5, title=title)
    footer = (
        f"anonymity degree H*(S) = {result.degree_bits:.5f} bits "
        f"({result.normalized_degree:.4f} of the log2(N) = {result.model.max_entropy:.4f} bound)"
    )
    return body + "\n" + footer


def render_key_points(points: dict[str, object], title: str | None = None) -> str:
    """Render a dictionary of headline numbers as a two-column table."""
    headers = ("quantity", "value")
    rows = [(key, value) for key, value in points.items()]
    return format_table(headers, rows, precision=4, title=title)
