"""Comparison of complete path-selection strategies.

The paper's punchline is that "several well-known anonymous communication
systems are not using the best path selection strategies".  The helpers here
make that comparison concrete: rank the strategies of deployed systems (and
any custom strategies) by the anonymity degree they achieve in a given system
model, alongside the overhead they pay (expected path length).
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass

from repro.core.anonymity import AnonymityAnalyzer
from repro.core.model import SystemModel
from repro.metrics import normalized_degree
from repro.routing.strategies import PathSelectionStrategy, deployed_system_strategies

__all__ = ["StrategyComparison", "compare_strategies", "compare_deployed_systems"]


@dataclass(frozen=True)
class StrategyComparison:
    """One row of a strategy-comparison table."""

    name: str
    distribution: str
    expected_length: float
    degree_bits: float
    normalized: float

    def as_row(self) -> tuple:
        """Row tuple in the column order used by the report renderer."""
        return (
            self.name,
            self.distribution,
            self.expected_length,
            self.degree_bits,
            self.normalized,
        )


def compare_strategies(
    model: SystemModel, strategies: Mapping[str, PathSelectionStrategy]
) -> list[StrategyComparison]:
    """Evaluate every strategy under ``model`` and sort by decreasing anonymity."""
    analyzer = AnonymityAnalyzer(model)
    rows = []
    for strategy in strategies.values():
        distribution = strategy.effective_distribution(model.n_nodes)
        degree = analyzer.anonymity_degree(distribution)
        rows.append(
            StrategyComparison(
                name=strategy.name,
                distribution=distribution.name,
                expected_length=distribution.mean(),
                degree_bits=degree,
                normalized=normalized_degree(degree, model.n_nodes),
            )
        )
    return sorted(rows, key=lambda row: -row.degree_bits)


def compare_deployed_systems(model: SystemModel) -> list[StrategyComparison]:
    """Rank the deployed systems surveyed in Section 2 of the paper.

    Cycle-path variants are excluded because the closed-form engine covers
    simple paths; the geometric length distributions of Crowds and Onion
    Routing II are evaluated on simple paths, which the paper itself does when
    comparing strategies purely by their length distributions.
    """
    return compare_strategies(model, deployed_system_strategies(include_cycle_variants=False))
