"""The file walker: parse the tree once, hand each rule its scoped files.

:class:`Project` is the linter's view of one repository checkout — a lazily
built cache of parsed modules plus a project-wide class index (class name →
concrete/abstract method names and base-class names) that cross-file rules
like the registry-contract check resolve against.  :func:`run_check` is the
entry point the CLI and the tests share: walk ``src/repro``, run every
registered rule on the files its scope admits, apply line suppressions, and
return the sorted findings.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path

from repro.analysis.lint.findings import Finding, apply_suppressions
from repro.analysis.lint.registry import ContractRule, available_rules, get_rule
from repro.exceptions import ConfigurationError

__all__ = ["ClassInfo", "Project", "default_root", "run_check"]

#: The package subtree the contract rules govern, relative to the repo root.
PACKAGE_ROOT = "src/repro"


@dataclass
class ClassInfo:
    """What the class index records per class definition."""

    name: str
    path: str
    line: int
    #: Names of methods defined concretely in the class body.
    methods: frozenset[str]
    #: Names of methods defined with an ``abstractmethod`` decorator.
    abstract_methods: frozenset[str]
    #: Base-class names as written (dotted bases keep their last segment).
    bases: tuple[str, ...] = ()


def _is_abstract(node: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
    for decorator in node.decorator_list:
        target = decorator
        if isinstance(target, ast.Call):
            target = target.func
        if isinstance(target, ast.Attribute) and target.attr in (
            "abstractmethod",
            "abstractproperty",
        ):
            return True
        if isinstance(target, ast.Name) and target.id in (
            "abstractmethod",
            "abstractproperty",
        ):
            return True
    return False


def _base_name(node: ast.expr) -> str | None:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


class Project:
    """A parsed view of the repository for one linter run."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root).resolve()
        if not (self.root / PACKAGE_ROOT).is_dir():
            raise ConfigurationError(
                f"{self.root} does not look like a repo checkout: "
                f"missing {PACKAGE_ROOT}/"
            )
        self._sources: dict[str, str] = {}
        self._trees: dict[str, ast.Module | None] = {}
        self._class_index: dict[str, ClassInfo] | None = None
        self._parse_errors: list[Finding] = []

    # ------------------------------------------------------------------ #
    # Files and parsing                                                   #
    # ------------------------------------------------------------------ #

    def python_files(self) -> list[str]:
        """Repo-relative posix paths of every linted python file, sorted."""
        package = self.root / PACKAGE_ROOT
        return sorted(
            path.relative_to(self.root).as_posix()
            for path in package.rglob("*.py")
            if "__pycache__" not in path.parts
        )

    def source(self, path: str) -> str:
        """The text of one repo-relative file (cached)."""
        if path not in self._sources:
            self._sources[path] = (self.root / path).read_text(encoding="utf-8")
        return self._sources[path]

    def tree(self, path: str) -> ast.Module | None:
        """The parsed module, or ``None`` (with a finding) on a syntax error."""
        if path not in self._trees:
            try:
                self._trees[path] = ast.parse(self.source(path), filename=path)
            except SyntaxError as error:
                # Cache the failure too, so repeated lookups (the per-file
                # walk plus the class index) report one finding, not two.
                self._trees[path] = None
                self._parse_errors.append(
                    Finding(
                        path=path,
                        line=error.lineno or 1,
                        rule="R000",
                        message=f"file does not parse: {error.msg}",
                    )
                )
        return self._trees.get(path)

    @property
    def parse_errors(self) -> list[Finding]:
        """Syntax-error findings collected while parsing."""
        return list(self._parse_errors)

    # ------------------------------------------------------------------ #
    # The class index                                                     #
    # ------------------------------------------------------------------ #

    def class_index(self) -> dict[str, ClassInfo]:
        """Class name → :class:`ClassInfo` across the whole package.

        Later definitions of a duplicated class name win — matching the
        runtime, where the registries resolve whatever was registered last.
        """
        if self._class_index is None:
            index: dict[str, ClassInfo] = {}
            for path in self.python_files():
                tree = self.tree(path)
                if tree is None:
                    continue
                for node in ast.walk(tree):
                    if not isinstance(node, ast.ClassDef):
                        continue
                    methods = set()
                    abstract = set()
                    for item in node.body:
                        if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                            if _is_abstract(item):
                                abstract.add(item.name)
                            else:
                                methods.add(item.name)
                    bases = tuple(
                        name
                        for name in (_base_name(base) for base in node.bases)
                        if name is not None
                    )
                    index[node.name] = ClassInfo(
                        name=node.name,
                        path=path,
                        line=node.lineno,
                        methods=frozenset(methods),
                        abstract_methods=frozenset(abstract),
                        bases=bases,
                    )
            self._class_index = index
        return self._class_index

    def concrete_methods(self, class_name: str) -> frozenset[str] | None:
        """Concrete methods of ``class_name`` including inherited ones.

        Walks base classes by name within the index; an ``abstractmethod``
        definition never satisfies the lookup (a concrete override in a
        subclass does).  Returns ``None`` when the class is not in the index
        at all.
        """
        index = self.class_index()
        if class_name not in index:
            return None
        resolved: set[str] = set()
        seen: set[str] = set()
        queue = [class_name]
        while queue:
            name = queue.pop(0)
            if name in seen:
                continue
            seen.add(name)
            info = index.get(name)
            if info is None:
                continue
            resolved.update(info.methods)
            queue.extend(info.bases)
        return frozenset(resolved)

    def own_methods(self, class_name: str) -> frozenset[str]:
        """Concrete methods defined directly in the class body (no bases)."""
        info = self.class_index().get(class_name)
        return info.methods if info is not None else frozenset()


def default_root() -> Path:
    """The repo root this module was loaded from (fallback: the cwd)."""
    here = Path(__file__).resolve()
    # .../<root>/src/repro/analysis/lint/walker.py -> parents[4] == <root>
    candidate = here.parents[4]
    if (candidate / PACKAGE_ROOT).is_dir():
        return candidate
    return Path.cwd()


def _instantiate(rule_ids: tuple[str, ...] | None) -> list[ContractRule]:
    # Importing the rules module registers the built-ins (exactly like
    # importing repro.batch.engine registers the built-in engines).
    import repro.analysis.lint.rules  # noqa: F401  (registration side effect)

    ids = available_rules() if rule_ids is None else tuple(rule_ids)
    return [get_rule(rule_id)() for rule_id in ids]


def run_check(
    root: str | Path | None = None,
    rules: tuple[str, ...] | None = None,
) -> list[Finding]:
    """Run the contract linter over one checkout; sorted findings.

    ``root`` defaults to the checkout this package was imported from;
    ``rules`` restricts the run to specific rule ids (default: all
    registered).  Per-file findings honour ``# repro: ignore[RULE]``
    suppressions; project-level findings (schema drift) do not.
    """
    project = Project(default_root() if root is None else root)
    active = _instantiate(rules)
    for rule in active:
        rule.bind(project)
    findings: list[Finding] = []
    for path in project.python_files():
        applicable = [rule for rule in active if rule.applies_to(path)]
        if not applicable:
            continue
        tree = project.tree(path)
        if tree is None:
            continue
        source = project.source(path)
        per_file: list[Finding] = []
        for rule in applicable:
            per_file.extend(rule.check(tree, source, path))
        findings.extend(apply_suppressions(per_file, source))
    findings.extend(project.parse_errors)
    for rule in active:
        findings.extend(rule.check_project(project))
    return sorted(findings)
