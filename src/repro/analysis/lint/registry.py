"""The contract-rule registry, mirroring the ``TrialEngine`` registry idiom.

A rule is a class with an ``id``, a one-line ``title``, a package ``scope``,
and a ``check(tree, source, path)`` method returning structured
:class:`~repro.analysis.lint.findings.Finding` objects.  Rules register
themselves through :func:`register_rule` exactly like estimation engines
register through :func:`repro.batch.engine.register_engine`: registration is
how the built-ins arrive, and how a downstream repo adds (or, with
``overwrite=True``, replaces) a rule without touching the walker.

Two hooks, both optional to override:

``check(tree, source, path)``
    Per-file pass over one parsed module.  ``path`` is repo-relative posix
    (``src/repro/batch/engine.py``); the walker only calls it for files the
    rule's ``scope``/``exclude`` prefixes admit.
``check_project(project)``
    One whole-project pass after the per-file walk — for rules whose
    invariant spans files (the schema-drift rule compares dataclasses
    against a pinned snapshot).  Findings from this hook are not
    line-suppressible; they guard repo-level contracts.
"""

from __future__ import annotations

import abc
import ast
from typing import TYPE_CHECKING

from repro.analysis.lint.findings import Finding
from repro.exceptions import ConfigurationError

if TYPE_CHECKING:
    from repro.analysis.lint.walker import Project

__all__ = [
    "ContractRule",
    "available_rules",
    "get_rule",
    "register_rule",
]


class ContractRule(abc.ABC):
    """One static contract: an id, a scope, and a per-file or project check."""

    #: Rule identifier (``R001``...), the key of the registry and of the
    #: ``# repro: ignore[...]`` suppression idiom.
    id: str = "R000"
    #: One-line description, shown by ``repro-anon check --list-rules``.
    title: str = ""
    #: Repo-relative posix path prefixes the per-file check runs on.
    #: ``None`` scopes the rule to the whole walked tree.
    scope: tuple[str, ...] | None = None
    #: Prefixes excluded even when ``scope`` admits them.
    exclude: tuple[str, ...] = ()

    def bind(self, project: "Project") -> None:
        """Hand the rule the project view before the file walk (optional).

        Cross-file rules (the registry-contract check resolves classes
        through the project-wide index) grab what they need here; the
        default keeps per-file rules project-free.
        """

    @classmethod
    def applies_to(cls, path: str) -> bool:
        """Whether the per-file check runs on ``path`` (repo-relative posix)."""
        if any(path.startswith(prefix) for prefix in cls.exclude):
            return False
        if cls.scope is None:
            return True
        return any(path.startswith(prefix) for prefix in cls.scope)

    def check(self, tree: ast.Module, source: str, path: str) -> list[Finding]:
        """Per-file pass; the default participates only in ``check_project``."""
        return []

    def check_project(self, project: "Project") -> list[Finding]:
        """Whole-project pass after the file walk; default: nothing."""
        return []

    def finding(self, path: str, line: int, message: str) -> Finding:
        """Convenience constructor stamping this rule's id."""
        return Finding(path=path, line=line, rule=self.id, message=message)


_RULES: dict[str, type[ContractRule]] = {}


def register_rule(rule: type[ContractRule], overwrite: bool = False) -> type[ContractRule]:
    """Register a contract rule under its ``id``.

    Mirrors :func:`repro.batch.engine.register_engine`: later registrations
    with ``overwrite=True`` replace built-ins, a duplicate id without
    ``overwrite`` is an error.  Returns the class so it stacks as a
    decorator.
    """
    if rule.id in _RULES and not overwrite:
        raise ConfigurationError(
            f"contract rule {rule.id!r} is already registered; "
            "pass overwrite=True to replace it"
        )
    _RULES[rule.id] = rule
    return rule


def available_rules() -> tuple[str, ...]:
    """Registered rule ids, sorted."""
    return tuple(sorted(_RULES))


def get_rule(rule_id: str) -> type[ContractRule]:
    """The rule class registered under ``rule_id``."""
    try:
        return _RULES[rule_id]
    except KeyError:
        known = ", ".join(sorted(_RULES))
        raise ConfigurationError(
            f"unknown contract rule {rule_id!r}; registered rules: {known}"
        ) from None
