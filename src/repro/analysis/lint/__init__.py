"""Static contract linter: AST rules enforcing the repo's runtime invariants.

Public surface: :func:`run_check` walks one checkout and returns sorted
:class:`Finding` objects; :func:`register_rule` adds a rule to the registry
(the ``TrialEngine`` registration idiom applied to lint rules);
:func:`available_rules` lists the registered ids.  ``repro-anon check`` is
the CLI front end.
"""

from repro.analysis.lint.findings import Finding, apply_suppressions, suppressed_rules
from repro.analysis.lint.registry import (
    ContractRule,
    available_rules,
    get_rule,
    register_rule,
)
from repro.analysis.lint.walker import Project, default_root, run_check

# Importing the rules module registers the built-in rules R001-R005.
from repro.analysis.lint import rules as _rules  # noqa: F401

__all__ = [
    "ContractRule",
    "Finding",
    "Project",
    "apply_suppressions",
    "available_rules",
    "default_root",
    "get_rule",
    "register_rule",
    "run_check",
    "suppressed_rules",
]
