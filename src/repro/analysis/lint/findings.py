"""Findings and the suppression idiom of the contract linter.

A :class:`Finding` is one violation of a static contract rule: the
repo-relative file, the 1-based line, the rule id, and a human-readable
message.  Findings are ordered (path, line, rule) so reports are stable
across runs and platforms.

Suppression mirrors ``noqa``: a violation is silenced by an explicit
marker on the flagged line ::

    order_free = {2, 3, 5}
    total = sum(x for x in order_free)  # repro: ignore[R001]

The marker names the rule (or a comma-separated list of rules) it waives;
there is deliberately no blanket ``ignore-everything`` form — every
suppression is a reviewed, rule-specific decision, exactly like a
``# type: ignore[code]``.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

__all__ = ["Finding", "suppressed_rules", "apply_suppressions"]

#: ``# repro: ignore[R001]`` / ``# repro: ignore[R001, R004]``.
_SUPPRESSION_RE = re.compile(r"#\s*repro:\s*ignore\[([A-Za-z0-9_,\s]+)\]")


@dataclass(frozen=True, order=True)
class Finding:
    """One static-contract violation at ``path:line``."""

    path: str
    line: int
    rule: str
    message: str

    def format(self) -> str:
        """The one-line report form: ``path:line: RULE message``."""
        return f"{self.path}:{self.line}: {self.rule} {self.message}"

    def as_dict(self) -> dict:
        """JSON form for ``repro-anon check --json``."""
        return {
            "path": self.path,
            "line": self.line,
            "rule": self.rule,
            "message": self.message,
        }


def suppressed_rules(source: str) -> dict[int, frozenset[str]]:
    """Map each line number to the rule ids suppressed on that line.

    Lines without a ``# repro: ignore[...]`` marker are absent from the
    mapping.  The scan is line-based (like ``noqa``), so a marker inside a
    string literal also suppresses — acceptable for a repo-hygiene tool,
    and the whole-repo clean test keeps markers honest.
    """
    suppressions: dict[int, frozenset[str]] = {}
    for line_number, line in enumerate(source.splitlines(), start=1):
        match = _SUPPRESSION_RE.search(line)
        if match:
            rules = frozenset(
                rule.strip() for rule in match.group(1).split(",") if rule.strip()
            )
            if rules:
                suppressions[line_number] = rules
    return suppressions


def apply_suppressions(findings: list[Finding], source: str) -> list[Finding]:
    """Drop findings whose line carries a matching suppression marker."""
    suppressions = suppressed_rules(source)
    if not suppressions:
        return findings
    return [
        finding
        for finding in findings
        if finding.rule not in suppressions.get(finding.line, frozenset())
    ]
