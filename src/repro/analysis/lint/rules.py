"""The built-in contract rules: the static twins of the runtime guarantees.

Each rule guards one invariant the tier-1 suite otherwise only catches at
runtime — after the violation is written, and only if a test exercises it:

=====  ==================================================================
R001   Determinism: no global-state randomness, wall-clock, or unordered
       set iteration inside the estimation kernels.
R002   Registry totality: every ``register_engine`` / ``register_backend``
       call site registers a class that statically defines the protocol
       surface the registry promises.
R003   Schema stability: the field lists of the content-addressed request,
       cache entry, and run-ledger record match the pinned snapshot in
       ``analysis/schemas.json`` unless the matching version constant was
       bumped — the static twin of the golden-digest tests.
R004   Float persistence: inline float production (``float()``, ``round()``,
       float-formatted f-strings) must not reach ``json.dump`` payloads in
       the bit-identical persistence paths; route through ``float.hex``.
R005   Telemetry hygiene: no ``print()`` or root-logger calls in library
       code, and metric handles only touched behind the ``enabled`` check.
=====  ==================================================================

Suppress a deliberate exception on its line with ``# repro: ignore[R001]``
(see :mod:`repro.analysis.lint.findings`).
"""

from __future__ import annotations

import ast
import json
from typing import TYPE_CHECKING

from repro.analysis.lint.findings import Finding
from repro.analysis.lint.registry import ContractRule, register_rule

if TYPE_CHECKING:
    from repro.analysis.lint.walker import Project

__all__ = [
    "DeterminismRule",
    "RegistryContractRule",
    "SchemaDriftRule",
    "FloatPersistenceRule",
    "TelemetryHygieneRule",
    "SCHEMA_SNAPSHOT_PATH",
    "PINNED_SCHEMAS",
    "current_schemas",
]


# ---------------------------------------------------------------------- #
# Shared AST helpers                                                      #
# ---------------------------------------------------------------------- #


def _attribute_chain(node: ast.expr) -> tuple[str, ...] | None:
    """``np.random.rand`` → ``("np", "random", "rand")``; ``None`` otherwise."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return tuple(reversed(parts))
    return None


def _collect_imports(tree: ast.Module) -> tuple[dict[str, str], dict[str, tuple[str, str]]]:
    """Module aliases and from-imports of one module.

    Returns ``(aliases, from_imports)`` where ``aliases`` maps a local name
    to the dotted module it is bound to (``np`` → ``numpy``) and
    ``from_imports`` maps a local name to ``(module, original_name)``.
    """
    aliases: dict[str, str] = {}
    from_imports: dict[str, tuple[str, str]] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for name in node.names:
                aliases[name.asname or name.name.split(".")[0]] = name.name
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for name in node.names:
                from_imports[name.asname or name.name] = (node.module, name.name)
    return aliases, from_imports


# ---------------------------------------------------------------------- #
# R001 — determinism                                                      #
# ---------------------------------------------------------------------- #

#: ``numpy.random`` attributes that construct explicit, seedable generators
#: rather than touching the process-global legacy state.
_NP_RANDOM_CONSTRUCTORS = frozenset(
    {
        "default_rng",
        "Generator",
        "SeedSequence",
        "BitGenerator",
        "PCG64",
        "PCG64DXSM",
        "MT19937",
        "Philox",
        "SFC64",
        "RandomState",
    }
)

#: ``random`` module attributes that construct instances instead of calling
#: the hidden module-global generator.
_STDLIB_RANDOM_CONSTRUCTORS = frozenset({"Random", "SystemRandom"})

_WALL_CLOCK = {
    ("time", "time"),
    ("time", "time_ns"),
    ("time", "perf_counter"),
    ("time", "perf_counter_ns"),
    ("time", "monotonic"),
    ("time", "monotonic_ns"),
    ("os", "urandom"),
    ("uuid", "uuid1"),
    ("uuid", "uuid4"),
}

_DATETIME_NOW = frozenset({"now", "utcnow", "today"})


@register_rule
class DeterminismRule(ContractRule):
    """R001: the estimation kernels must be pure functions of the seed.

    The bit-identical ``(seed, shards)`` contract — and with it the content-
    addressed cache and the run-ledger diff — dies the moment a kernel reads
    global random state, the wall clock, or the iteration order of a set.
    Flags, inside ``batch/``, ``combinatorics/``, ``adversary/``, and
    ``routing/``:

    * calls through the ``random`` module's global generator and
      ``numpy.random``'s legacy global state (explicit ``Generator``
      construction — ``default_rng``, ``SeedSequence`` — stays legal);
    * wall-clock and entropy taps: ``time.time()``, ``time.perf_counter()``,
      ``time.monotonic()`` (and their ``_ns`` twins), ``datetime.now()``,
      ``os.urandom()``, ``uuid.uuid4()``, anything from ``secrets`` — kernel
      timing must flow through the injectable telemetry clock
      (``registry.clock``) so tests can fake it and results never depend on
      it; deliberate elapsed-time *reporting* is suppressed per line;
    * iteration directly over a set literal or ``set()``/``frozenset()``
      call in a ``for`` or comprehension — hash-seed-dependent order that
      leaks into whatever the loop builds; sort first.
    """

    id = "R001"
    title = "determinism: no global randomness, wall clock, or set-order iteration"
    scope = (
        "src/repro/batch/",
        "src/repro/combinatorics/",
        "src/repro/adversary/",
        "src/repro/routing/",
    )

    def check(self, tree: ast.Module, source: str, path: str) -> list[Finding]:
        findings: list[Finding] = []
        aliases, from_imports = _collect_imports(tree)

        def module_of(local: str) -> str | None:
            return aliases.get(local)

        for node in ast.walk(tree):
            if isinstance(node, ast.Call):
                findings.extend(
                    self._check_call(node, path, module_of, from_imports)
                )
            elif isinstance(node, ast.For):
                findings.extend(self._check_set_iteration(node.iter, path))
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
                for generator in node.generators:
                    findings.extend(self._check_set_iteration(generator.iter, path))
        return findings

    def _check_call(self, node, path, module_of, from_imports) -> list[Finding]:
        chain = _attribute_chain(node.func)
        if chain is not None and len(chain) >= 2:
            module = module_of(chain[0])
            resolved = (module.split(".")[0], *chain[1:]) if module else None
            if resolved is None and chain[0] in from_imports:
                # e.g. ``from datetime import datetime; datetime.now()``.
                origin, original = from_imports[chain[0]]
                resolved = (origin.split(".")[0], original, *chain[1:])
            if resolved is not None:
                return self._check_resolved_chain(node, path, resolved)
        if isinstance(node.func, ast.Name):
            imported = from_imports.get(node.func.id)
            if imported is not None:
                return self._check_from_import(node, path, *imported)
        return []

    def _check_resolved_chain(self, node, path, chain) -> list[Finding]:
        root, attrs = chain[0], chain[1:]
        if root == "random" and attrs[0] not in _STDLIB_RANDOM_CONSTRUCTORS:
            return [
                self.finding(
                    path,
                    node.lineno,
                    f"random.{attrs[0]}() reads the module-global generator; "
                    "thread an explicit seeded rng through instead",
                )
            ]
        if root == "secrets":
            return [
                self.finding(
                    path,
                    node.lineno,
                    f"secrets.{attrs[0]}() is an OS entropy tap; kernels must "
                    "be pure functions of the seed",
                )
            ]
        if (
            root == "numpy"
            and len(attrs) >= 2
            and attrs[0] == "random"
            and attrs[1] not in _NP_RANDOM_CONSTRUCTORS
        ):
            return [
                self.finding(
                    path,
                    node.lineno,
                    f"np.random.{attrs[1]}() touches numpy's global random "
                    "state; construct a Generator (np.random.default_rng) "
                    "and pass it explicitly",
                )
            ]
        if (root, attrs[0]) in _WALL_CLOCK:
            return [
                self.finding(
                    path,
                    node.lineno,
                    f"{root}.{attrs[0]}() makes the result depend on the "
                    "environment, not the seed",
                )
            ]
        if root == "datetime" and attrs[-1] in _DATETIME_NOW:
            return [
                self.finding(
                    path,
                    node.lineno,
                    f"datetime {attrs[-1]}() reads the wall clock; results "
                    "must be pure functions of the seed",
                )
            ]
        return []

    def _check_from_import(self, node, path, module, original) -> list[Finding]:
        flagged = (
            module == "random"
            and original not in _STDLIB_RANDOM_CONSTRUCTORS
            or module == "secrets"
            or (module.split(".")[0], original) in _WALL_CLOCK
            or module == "datetime"
            and original in _DATETIME_NOW
        )
        if flagged:
            return [
                self.finding(
                    path,
                    node.lineno,
                    f"{original}() (from {module}) injects global randomness "
                    "or wall-clock state into a deterministic kernel",
                )
            ]
        return []

    def _check_set_iteration(self, iterable: ast.expr, path: str) -> list[Finding]:
        is_set_literal = isinstance(iterable, (ast.Set, ast.SetComp))
        is_set_call = (
            isinstance(iterable, ast.Call)
            and isinstance(iterable.func, ast.Name)
            and iterable.func.id in ("set", "frozenset")
        )
        if is_set_literal or is_set_call:
            return [
                self.finding(
                    path,
                    iterable.lineno,
                    "iterating a set: the order is hash-seed-dependent and "
                    "leaks into whatever this loop builds; iterate "
                    "sorted(...) instead",
                )
            ]
        return []


# ---------------------------------------------------------------------- #
# R002 — registry contracts                                               #
# ---------------------------------------------------------------------- #

#: What a registered trial engine must expose: the ``covers`` predicate plus
#: either the three pipeline stages or a wholesale ``run_accumulate``
#: override in its own body.
_ENGINE_STAGES = ("sample_block", "classify", "score")


@register_rule
class RegistryContractRule(ContractRule):
    """R002: registration call sites must register total protocol surfaces.

    ``select_engine`` promises that whatever ``covers()`` claims can actually
    run; a class registered without the stage methods only fails when its
    domain is first exercised.  For every ``register_engine(...)`` call the
    registered class (resolved through the project-wide class index,
    inherited concrete methods included) must define ``covers`` plus either
    all of ``sample_block``/``classify``/``score`` or its own
    ``run_accumulate``; ``register_backend(...)`` requires ``estimate``
    (``plan``/``accumulate_runner`` extend the surface but are optional).
    A call site whose class the linter cannot resolve statically is itself
    a finding — registration is a compile-time contract, not a runtime
    surprise.
    """

    id = "R002"
    title = "registry contracts: registered classes define the protocol surface"
    scope = ("src/repro/",)
    #: The walker needs the whole-project class index, handed in lazily.
    _project: "Project | None" = None

    def bind(self, project: "Project") -> None:
        self._project = project

    def check(self, tree: ast.Module, source: str, path: str) -> list[Finding]:
        findings: list[Finding] = []
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            callee = node.func
            name = (
                callee.id
                if isinstance(callee, ast.Name)
                else callee.attr
                if isinstance(callee, ast.Attribute)
                else None
            )
            if name not in ("register_engine", "register_backend"):
                continue
            target = self._registered_target(node)
            if target is None:
                findings.append(
                    self.finding(
                        path,
                        node.lineno,
                        f"{name}() call site registers an expression the "
                        "linter cannot resolve to a class; register the "
                        "class by name so the protocol surface is checkable",
                    )
                )
                continue
            findings.extend(self._check_target(node, path, name, target))
        return findings

    @staticmethod
    def _registered_target(node: ast.Call) -> str | None:
        """The class name being registered, or ``None`` if unresolvable."""
        candidate: ast.expr | None = None
        for keyword in node.keywords:
            if keyword.arg in ("engine", "factory"):
                candidate = keyword.value
        if candidate is None:
            if len(node.args) >= 2:
                candidate = node.args[1]
            elif len(node.args) == 1:
                candidate = node.args[0]
        if isinstance(candidate, ast.Name):
            return candidate.id
        if isinstance(candidate, ast.Attribute):
            return candidate.attr
        return None

    def _check_target(self, node, path, registrar, class_name) -> list[Finding]:
        if self._project is None:
            return []
        methods = self._project.concrete_methods(class_name)
        if methods is None:
            return [
                self.finding(
                    path,
                    node.lineno,
                    f"{registrar}({class_name}) registers a class the "
                    "project-wide index cannot find; registered classes "
                    "must be statically defined in src/repro",
                )
            ]
        missing: list[str] = []
        if registrar == "register_engine":
            if "covers" not in methods:
                missing.append("covers")
            stages = [stage for stage in _ENGINE_STAGES if stage not in methods]
            if stages and "run_accumulate" not in self._project.own_methods(class_name):
                missing.extend(stages)
        else:
            if "estimate" not in methods:
                missing.append("estimate")
        if missing:
            return [
                self.finding(
                    path,
                    node.lineno,
                    f"{registrar}({class_name}) registers a class without a "
                    f"concrete {', '.join(missing)}; the registry promises "
                    "this surface to every caller",
                )
            ]
        return []


# ---------------------------------------------------------------------- #
# R003 — schema drift                                                     #
# ---------------------------------------------------------------------- #

#: Repo-relative path of the pinned schema snapshot.
SCHEMA_SNAPSHOT_PATH = "src/repro/analysis/schemas.json"

#: module path -> (version constant, pinned dataclass names).  These are the
#: serialised contracts: the content digest's canonical form, the on-disk
#: cache entry, and the run-ledger record.
PINNED_SCHEMAS: dict[str, tuple[str, tuple[str, ...]]] = {
    "src/repro/service/request.py": (
        "CANONICAL_VERSION",
        ("DistributionSpec", "EstimateRequest"),
    ),
    "src/repro/service/cache.py": ("ENTRY_VERSION", ("CachedEstimate",)),
    "src/repro/telemetry/journal.py": ("JOURNAL_VERSION", ("RunRecord",)),
}


def _dataclass_fields(tree: ast.Module, class_name: str) -> list[str] | None:
    """Ordered annotated field names of one class, or ``None`` if absent."""
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef) and node.name == class_name:
            return [
                item.target.id
                for item in node.body
                if isinstance(item, ast.AnnAssign)
                and isinstance(item.target, ast.Name)
            ]
    return None


def _module_constant(tree: ast.Module, name: str) -> object | None:
    """The literal value of one module-level constant assignment."""
    for node in tree.body:
        targets: list[ast.expr] = []
        value: ast.expr | None = None
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets, value = [node.target], node.value
        for target in targets:
            if isinstance(target, ast.Name) and target.id == name:
                if isinstance(value, ast.Constant):
                    return value.value
    return None


def _class_line(tree: ast.Module, class_name: str) -> int:
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef) and node.name == class_name:
            return node.lineno
    return 1


def current_schemas(project: "Project") -> dict:
    """The schema snapshot of the checkout as it stands (the re-pin form)."""
    modules: dict[str, dict] = {}
    for path, (constant, classes) in sorted(PINNED_SCHEMAS.items()):
        tree = project.tree(path)
        if tree is None:
            continue
        modules[path] = {
            "version_constant": constant,
            "version": _module_constant(tree, constant),
            "classes": {
                name: _dataclass_fields(tree, name) or [] for name in classes
            },
        }
    return {"modules": modules}


@register_rule
class SchemaDriftRule(ContractRule):
    """R003: serialised field lists match the pinned snapshot or bump a version.

    The golden-digest tests prove, at runtime, that the canonical form of a
    request still hashes to the pinned digest.  This rule is their static
    twin: the dataclass field lists of :class:`EstimateRequest`,
    :class:`DistributionSpec`, :class:`CachedEstimate`, and
    :class:`RunRecord` are compared against ``analysis/schemas.json``.  A
    drifted field list whose version constant (``CANONICAL_VERSION`` /
    ``ENTRY_VERSION`` / ``JOURNAL_VERSION``) was *not* bumped is the error
    this rule exists for; a drift with a bump — and a bump without a re-pin
    — still fires, telling the author to re-pin the snapshot
    (``repro-anon check --update-schemas``) so the next drift is caught.
    """

    id = "R003"
    title = "schema drift: serialised field lists are pinned against version bumps"

    def check_project(self, project: "Project") -> list[Finding]:
        snapshot_file = project.root / SCHEMA_SNAPSHOT_PATH
        if not snapshot_file.is_file():
            return [
                Finding(
                    path=SCHEMA_SNAPSHOT_PATH,
                    line=1,
                    rule=self.id,
                    message="pinned schema snapshot is missing; create it "
                    "with 'repro-anon check --update-schemas'",
                )
            ]
        try:
            pinned = json.loads(snapshot_file.read_text(encoding="utf-8"))["modules"]
        except (ValueError, KeyError):
            return [
                Finding(
                    path=SCHEMA_SNAPSHOT_PATH,
                    line=1,
                    rule=self.id,
                    message="pinned schema snapshot is unreadable; regenerate "
                    "it with 'repro-anon check --update-schemas'",
                )
            ]
        findings: list[Finding] = []
        for path, (constant, classes) in sorted(PINNED_SCHEMAS.items()):
            tree = project.tree(path)
            if tree is None:
                continue
            entry = pinned.get(path)
            if entry is None:
                findings.append(
                    self.finding(
                        path,
                        1,
                        f"module is not pinned in {SCHEMA_SNAPSHOT_PATH}; "
                        "re-pin with 'repro-anon check --update-schemas'",
                    )
                )
                continue
            version = _module_constant(tree, constant)
            pinned_version = entry.get("version")
            version_bumped = version != pinned_version
            drifted = False
            for class_name in classes:
                fields = _dataclass_fields(tree, class_name)
                pinned_fields = entry.get("classes", {}).get(class_name)
                if fields is None:
                    findings.append(
                        self.finding(
                            path, 1, f"pinned class {class_name} no longer exists"
                        )
                    )
                    continue
                if pinned_fields is None:
                    findings.append(
                        self.finding(
                            path,
                            _class_line(tree, class_name),
                            f"{class_name} is not pinned in "
                            f"{SCHEMA_SNAPSHOT_PATH}; re-pin with "
                            "'repro-anon check --update-schemas'",
                        )
                    )
                    continue
                if fields != list(pinned_fields):
                    drifted = True
                    if version_bumped:
                        findings.append(
                            self.finding(
                                path,
                                _class_line(tree, class_name),
                                f"field list of {class_name} changed "
                                f"(with a {constant} bump to {version!r}); "
                                f"re-pin {SCHEMA_SNAPSHOT_PATH} with "
                                "'repro-anon check --update-schemas'",
                            )
                        )
                    else:
                        findings.append(
                            self.finding(
                                path,
                                _class_line(tree, class_name),
                                f"field list of {class_name} changed without "
                                f"a {constant} bump: pinned "
                                f"{list(pinned_fields)}, found {fields}; "
                                "stale cache entries and journals would be "
                                f"misread — bump {constant} and re-pin "
                                f"{SCHEMA_SNAPSHOT_PATH}",
                            )
                        )
            if version_bumped and not drifted:
                findings.append(
                    self.finding(
                        path,
                        1,
                        f"{constant} changed (pinned {pinned_version!r}, found "
                        f"{version!r}) but the snapshot was not re-pinned; "
                        "run 'repro-anon check --update-schemas'",
                    )
                )
        return findings


# ---------------------------------------------------------------------- #
# R004 — float persistence                                                #
# ---------------------------------------------------------------------- #


@register_rule
class FloatPersistenceRule(ContractRule):
    """R004: floats in bit-identical persistence paths route through ``float.hex``.

    The cache and the run ledger promise bit-identical replay; a float that
    reaches JSON through ``round()``, a fresh ``float()`` coercion, or a
    formatted f-string is quantised or re-parsed, and the replayed report
    stops matching the computed one.  Inside the pinned persistence modules
    this rule inspects every ``json.dump``/``json.dumps`` payload —
    following one level of indirection into same-module helper functions and
    methods — and flags inline float production that is not immediately
    ``.hex()``-encoded.  (Opaque payloads built elsewhere are the runtime
    round-trip tests' job; this rule catches the easy-to-write regression at
    the call site.)
    """

    id = "R004"
    title = "float persistence: json payload floats go through float.hex"
    scope = ("src/repro/service/cache.py", "src/repro/telemetry/journal.py")

    def check(self, tree: ast.Module, source: str, path: str) -> list[Finding]:
        findings: list[Finding] = []
        helpers = self._local_callables(tree)
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            chain = _attribute_chain(node.func)
            is_dump = chain is not None and chain[0] == "json" and chain[-1] in (
                "dump",
                "dumps",
            )
            if not is_dump or not node.args:
                continue
            for payload in self._payload_expressions(node.args[0], helpers):
                self._scan_payload(payload, path, findings)
        return findings

    @staticmethod
    def _local_callables(tree: ast.Module) -> dict[str, ast.FunctionDef]:
        """Module functions and methods by (unqualified) name, latest wins."""
        callables: dict[str, ast.FunctionDef] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.FunctionDef):
                callables[node.name] = node
        return callables

    @staticmethod
    def _payload_expressions(
        payload: ast.expr, helpers: dict[str, ast.FunctionDef]
    ) -> list[ast.expr]:
        """The expressions whose values reach the dump, one hop deep."""
        if isinstance(payload, ast.Call):
            name = None
            if isinstance(payload.func, ast.Name):
                name = payload.func.id
            elif isinstance(payload.func, ast.Attribute):
                name = payload.func.attr
            helper = helpers.get(name) if name is not None else None
            if helper is not None:
                return [
                    statement.value
                    for statement in ast.walk(helper)
                    if isinstance(statement, ast.Return)
                    and statement.value is not None
                ]
        return [payload]

    def _scan_payload(
        self, node: ast.expr, path: str, findings: list[Finding]
    ) -> None:
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Attribute) and func.attr == "hex":
                # float(x).hex() / value.hex(): the sanctioned encoding.
                # Still scan the argument expressions underneath.
                inner = func.value
                children = list(node.args)
                if isinstance(inner, ast.Call):
                    children.extend(inner.args)
                else:
                    children.append(inner)
                for child in children:
                    self._scan_payload(child, path, findings)
                return
            if isinstance(func, ast.Name) and func.id in ("float", "round", "repr"):
                findings.append(
                    self.finding(
                        path,
                        node.lineno,
                        f"{func.id}() feeds a json.dump payload raw; "
                        "bit-identical persistence must encode floats with "
                        "float.hex (decode with float.fromhex)",
                    )
                )
        if isinstance(node, ast.JoinedStr):
            if any(
                isinstance(value, ast.FormattedValue) and value.format_spec is not None
                for value in node.values
            ):
                findings.append(
                    self.finding(
                        path,
                        node.lineno,
                        "format-spec f-string feeds a json.dump payload; "
                        "formatted floats are quantised — encode with "
                        "float.hex instead",
                    )
                )
        for child in ast.iter_child_nodes(node):
            self._scan_payload(child, path, findings)


# ---------------------------------------------------------------------- #
# R005 — telemetry hygiene                                                #
# ---------------------------------------------------------------------- #

_ROOT_LOGGER_CALLS = frozenset(
    {"debug", "info", "warning", "error", "critical", "exception", "log", "basicConfig"}
)
_METRIC_HANDLES = frozenset({"counter", "gauge", "histogram"})


@register_rule
class TelemetryHygieneRule(ContractRule):
    """R005: library code stays silent and pays for telemetry only when on.

    The library's contract is a ``NullHandler`` on the root ``repro`` logger
    and a measured ≤5% disabled-telemetry overhead.  ``print()`` and
    root-logger calls bypass the first; metric-handle calls
    (``.counter()``/``.gauge()``/``.histogram()``) outside an
    ``if <registry>.enabled`` guard bypass the second — each one allocates
    label tuples on the hot path even when telemetry is off.  The CLI
    (``src/repro/cli.py``) is the human-facing surface and is exempt; the
    telemetry package itself implements the handles and is exempt from the
    guard check.
    """

    id = "R005"
    title = "telemetry hygiene: no print/root-logger; metrics behind enabled"
    scope = ("src/repro/",)
    exclude = ("src/repro/cli.py",)

    def check(self, tree: ast.Module, source: str, path: str) -> list[Finding]:
        findings: list[Finding] = []
        in_telemetry = path.startswith("src/repro/telemetry/")
        self._visit(tree, path, guarded=False, in_telemetry=in_telemetry, findings=findings)
        return findings

    def _visit(self, node, path, guarded, in_telemetry, findings) -> None:
        if isinstance(node, ast.Call):
            self._check_call(node, path, guarded, in_telemetry, findings)
        if isinstance(node, (ast.If, ast.IfExp)):
            test_guards = self._test_mentions_enabled(node.test)
            body = node.body if isinstance(node.body, list) else [node.body]
            orelse = node.orelse if isinstance(node.orelse, list) else [node.orelse]
            self._visit_all(node.test, path, guarded, in_telemetry, findings)
            for child in body:
                self._visit(child, path, guarded or test_guards, in_telemetry, findings)
            for child in orelse:
                self._visit(child, path, guarded, in_telemetry, findings)
            return
        for child in ast.iter_child_nodes(node):
            self._visit(child, path, guarded, in_telemetry, findings)

    def _visit_all(self, node, path, guarded, in_telemetry, findings) -> None:
        self._visit(node, path, guarded, in_telemetry, findings)

    @staticmethod
    def _test_mentions_enabled(test: ast.expr) -> bool:
        for node in ast.walk(test):
            if isinstance(node, ast.Attribute) and node.attr == "enabled":
                return True
            if isinstance(node, ast.Name) and node.id == "enabled":
                return True
        return False

    def _check_call(self, node, path, guarded, in_telemetry, findings) -> None:
        func = node.func
        if isinstance(func, ast.Name) and func.id == "print":
            findings.append(
                self.finding(
                    path,
                    node.lineno,
                    "print() in library code; use the module logger "
                    "(logging.getLogger(__name__)) or return the text",
                )
            )
            return
        chain = _attribute_chain(func)
        if chain is not None and chain[0] == "logging":
            if chain[-1] in _ROOT_LOGGER_CALLS:
                findings.append(
                    self.finding(
                        path,
                        node.lineno,
                        f"logging.{chain[-1]}() configures/logs through the "
                        "root logger; use a module logger under the 'repro' "
                        "hierarchy",
                    )
                )
                return
            if chain[-1] == "getLogger":
                rootish = not node.args or (
                    isinstance(node.args[0], ast.Constant)
                    and node.args[0].value in ("", "root")
                )
                if rootish and not node.keywords:
                    findings.append(
                        self.finding(
                            path,
                            node.lineno,
                            "logging.getLogger() grabs the root logger; pass "
                            "__name__ so handlers stay under 'repro'",
                        )
                    )
                return
        if (
            not in_telemetry
            and isinstance(func, ast.Attribute)
            and func.attr in _METRIC_HANDLES
            and not (
                isinstance(func.value, ast.Name) and func.value.id in ("self", "cls")
            )
            and not guarded
        ):
            findings.append(
                self.finding(
                    path,
                    node.lineno,
                    f".{func.attr}() metric handle touched outside an "
                    "'if <registry>.enabled' guard; the disabled hot path "
                    "must stay one enabled-check per chunk",
                )
            )
