"""Anonymity-versus-overhead trade-off analysis.

Rerouting buys anonymity with latency and traffic: every extra intermediate
node adds one store-and-forward delay and one more link-level transmission
(Section 1 of the paper calls these the "extra overhead in terms of longer
rerouting delays and extra amount of rerouting traffic").  A system designer
therefore does not ask "which strategy maximises ``H*``" in isolation but
"which strategies are *efficient*": not dominated by another strategy that is
both cheaper and more anonymous.

This module quantifies that trade-off:

* :func:`evaluate_tradeoff` computes, for a set of candidate strategies, the
  expected overhead (expected path length = expected extra transmissions and
  expected extra hops of delay) and the anonymity degree;
* :func:`pareto_frontier` extracts the efficient (non-dominated) strategies;
* :func:`anonymity_per_hop` summarises the marginal value of each additional
  expected hop along the fixed-length family — the curve a designer consults
  to decide where more latency stops buying meaningful anonymity.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from dataclasses import dataclass

from repro.core.anonymity import AnonymityAnalyzer
from repro.core.model import SystemModel
from repro.distributions import FixedLength, PathLengthDistribution
from repro.metrics import normalized_degree

__all__ = [
    "TradeoffPoint",
    "evaluate_tradeoff",
    "pareto_frontier",
    "anonymity_per_hop",
]


@dataclass(frozen=True)
class TradeoffPoint:
    """One strategy's position in the overhead/anonymity plane."""

    name: str
    #: Expected number of intermediate nodes = expected extra transmissions
    #: per message = expected extra store-and-forward delays.
    expected_overhead: float
    degree_bits: float
    normalized: float

    def dominates(self, other: "TradeoffPoint") -> bool:
        """True when this point is at least as cheap *and* at least as anonymous,
        and strictly better on at least one of the two axes."""
        no_worse = (
            self.expected_overhead <= other.expected_overhead + 1e-12
            and self.degree_bits >= other.degree_bits - 1e-12
        )
        strictly_better = (
            self.expected_overhead < other.expected_overhead - 1e-12
            or self.degree_bits > other.degree_bits + 1e-12
        )
        return no_worse and strictly_better


def evaluate_tradeoff(
    model: SystemModel,
    strategies: Mapping[str, PathLengthDistribution],
) -> list[TradeoffPoint]:
    """Evaluate every candidate strategy's overhead and anonymity degree.

    Returns the points sorted by increasing expected overhead (ties broken by
    decreasing anonymity), which is the order a designer reads the table in.
    """
    analyzer = AnonymityAnalyzer(model)
    points = []
    for name, distribution in strategies.items():
        degree = analyzer.anonymity_degree(distribution)
        points.append(
            TradeoffPoint(
                name=name,
                expected_overhead=distribution.mean(),
                degree_bits=degree,
                normalized=normalized_degree(degree, model.n_nodes),
            )
        )
    return sorted(points, key=lambda p: (p.expected_overhead, -p.degree_bits))


def pareto_frontier(points: Sequence[TradeoffPoint]) -> list[TradeoffPoint]:
    """Return the non-dominated subset of ``points`` (the efficient strategies)."""
    frontier = []
    for candidate in points:
        if not any(other.dominates(candidate) for other in points if other is not candidate):
            frontier.append(candidate)
    return sorted(frontier, key=lambda p: p.expected_overhead)


def anonymity_per_hop(
    model: SystemModel,
    max_length: int | None = None,
) -> list[tuple[int, float, float]]:
    """Marginal anonymity gained by each additional hop of the fixed-length family.

    Returns ``(length, degree_bits, marginal_gain_bits)`` triples, where the
    marginal gain is ``F(l) - F(l-1)``.  The point at which the marginal gain
    turns negative is exactly the paper's long-path-effect threshold.
    """
    analyzer = AnonymityAnalyzer(model)
    if max_length is None:
        max_length = model.max_simple_path_length
    rows = []
    previous = analyzer.anonymity_degree(FixedLength(0))
    for length in range(1, max_length + 1):
        degree = analyzer.anonymity_degree(FixedLength(length))
        rows.append((length, degree, degree - previous))
        previous = degree
    return rows
