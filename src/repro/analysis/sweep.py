"""Parameter sweeps over the anonymity-degree engine.

The figures of the paper are all one-dimensional sweeps: anonymity degree as a
function of the fixed path length, of the width of a uniform distribution, of
its expectation, and so on.  The helpers here run those sweeps and return
plain ``(x, series)`` data that the experiment modules, the benchmarks, and
the CLI render as tables.

Every sweep accepts a ``backend`` argument naming an estimator engine from
:mod:`repro.batch.backends` (``"exact"`` — the default closed form, ``"event"``
— hop-by-hop Monte-Carlo, ``"batch"`` — the vectorized columnar estimator,
``"sharded"`` — multiprocess batch kernels), so figure reproductions can be
re-run on the sampling fast path without touching the sweep logic.
Backend-specific options (e.g. ``{"workers": 8}`` for ``sharded``) pass
through ``backend_options``.  Monte-Carlo backends draw one independent child
stream per sweep point from ``rng``, so a fixed seed reproduces the whole
sweep.

Sweeps can also run **precision-driven and cache-warm** through the
estimation service (:mod:`repro.service`): passing ``precision`` (a target
95% CI half-width in bits) and/or a shared
:class:`~repro.service.service.EstimationService` routes every point through
content-addressed :class:`~repro.service.request.EstimateRequest`\\ s.  Each
point then spends only the trials its precision target needs (``n_trials``
becomes the per-point ceiling), and repeating a sweep against the same
service — or a service backed by the same ``cache_dir`` — serves repeated
points from the cache bit-identically instead of recomputing them.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Sequence
from dataclasses import dataclass, field

from repro.batch.backends import get_backend
from repro.core.anonymity import AnonymityAnalyzer
from repro.core.model import AdversaryModel, SystemModel
from repro.distributions import FixedLength, PathLengthDistribution, UniformLength
from repro.exceptions import ConfigurationError
from repro.routing.strategies import PathSelectionStrategy
from repro.utils.rng import RandomSource, ensure_rng, spawn_child_rng

__all__ = ["SweepSeries", "SweepResult", "fixed_length_sweep", "uniform_width_sweep", "uniform_mean_sweep", "adversary_model_sweep"]


def _degree_evaluator(
    model: SystemModel,
    backend: str,
    n_trials: int,
    rng: RandomSource,
    backend_options: dict | None = None,
    precision: float | None = None,
    service=None,
) -> Callable[[PathLengthDistribution], float]:
    """Build the per-distribution degree function for one sweep.

    The default ``"exact"`` backend keeps the historical behaviour (and cost)
    of calling the closed form directly; any other name is resolved through
    the backend registry and evaluated with ``n_trials`` samples per point,
    with ``backend_options`` forwarded to the backend factory.

    When ``precision`` and/or ``service`` is given the sweep goes through the
    estimation service instead: each point becomes an ``EstimateRequest``
    (precision target, ``n_trials`` as the trial ceiling, per-point seeds
    drawn from ``rng`` in point order) answered adaptively and cached by
    content digest.  Passing only ``service`` keeps the fixed ``n_trials``
    budget per point — the same sweep, just cache-warm.  ``backend="exact"``
    is promoted to ``"batch"`` in this mode — a zero-variance engine has
    nothing to adapt.
    """
    if precision is not None or service is not None:
        return _service_evaluator(
            model, backend, n_trials, rng, backend_options, precision, service
        )
    if backend == "exact":
        if backend_options:
            raise ConfigurationError(
                f"backend_options {sorted(backend_options)} only apply to "
                "sampling backends; the 'exact' backend takes none "
                "(pass e.g. backend='sharded' to use workers/shards)"
            )
        if not model.clique_routing:
            # The closed forms assume a clique; exact topology sweeps go
            # through full enumeration (small N only — it raises beyond).
            from repro.core.enumeration import ExhaustiveAnalyzer

            return ExhaustiveAnalyzer(model).anonymity_degree
        return AnonymityAnalyzer(model).anonymity_degree
    generator = ensure_rng(rng)
    # Resolve the backend once per sweep so stateful engines (e.g. the
    # sharded backend's worker pool) are reused across every sweep point.
    engine = get_backend(backend, **(backend_options or {}))

    def evaluate(distribution: PathLengthDistribution) -> float:
        # The model's path model rides along: a CYCLE_ALLOWED model sweeps
        # Crowds-style walk strategies through the cycle engine.
        strategy = PathSelectionStrategy(
            name=distribution.name,
            distribution=distribution,
            path_model=model.path_model,
        )
        report = engine.estimate(
            model,
            strategy,
            n_trials=n_trials,
            rng=spawn_child_rng(generator),
        )
        return report.degree_bits

    return evaluate


def _service_evaluator(
    model: SystemModel,
    backend: str,
    n_trials: int,
    rng: RandomSource,
    backend_options: dict | None,
    precision: float | None,
    service,
) -> Callable[[PathLengthDistribution], float]:
    """Per-distribution degree function routed through the estimation service."""
    from repro.service import DistributionSpec, EstimateRequest, EstimationService

    if service is None:
        # An ephemeral, memory-only service still deduplicates points that
        # recur within this one sweep; pass a shared service for cross-sweep
        # (or on-disk) cache warmth.
        service = EstimationService()
    if not isinstance(service, EstimationService):
        raise ConfigurationError(
            f"service must be an EstimationService, got {service!r}"
        )
    backend_name = "batch" if backend == "exact" else backend
    generator = ensure_rng(rng)

    def evaluate(distribution: PathLengthDistribution) -> float:
        request = EstimateRequest(
            n_nodes=model.n_nodes,
            distribution=DistributionSpec.from_distribution(distribution),
            n_compromised=model.n_compromised,
            adversary=model.adversary.value,
            receiver_compromised=model.receiver_compromised,
            path_model=model.path_model.value,
            topology=None if model.topology is None else model.topology.spec,
            backend=backend_name,
            backend_options=tuple(sorted((backend_options or {}).items())),
            # precision=None keeps the sweep's fixed n_trials budget — passing
            # only service= means "the same sweep, but cache-warm".
            precision=precision,
            block_size=min(10_000, n_trials),
            max_trials=n_trials,
            seed=int(generator.integers(0, 2**63 - 1)),
        )
        return service.estimate(request).degree_bits

    return evaluate


@dataclass(frozen=True)
class SweepSeries:
    """One named curve of a sweep."""

    label: str
    values: tuple[float, ...]


@dataclass(frozen=True)
class SweepResult:
    """A complete sweep: shared x axis plus one or more curves."""

    x_label: str
    x_values: tuple[float, ...]
    series: tuple[SweepSeries, ...] = field(default_factory=tuple)

    def series_by_label(self, label: str) -> SweepSeries:
        """Look one curve up by its label."""
        for entry in self.series:
            if entry.label == label:
                return entry
        raise KeyError(f"no series labelled {label!r}")

    def as_dict(self) -> dict[str, tuple[float, ...]]:
        """Mapping of series label to values (handy for table rendering)."""
        return {entry.label: entry.values for entry in self.series}


def fixed_length_sweep(
    model: SystemModel,
    lengths: Iterable[int],
    backend: str = "exact",
    n_trials: int = 10_000,
    rng: RandomSource = None,
    backend_options: dict | None = None,
    precision: float | None = None,
    service=None,
) -> SweepResult:
    """Anonymity degree of ``F(l)`` for every ``l`` in ``lengths``."""
    degree = _degree_evaluator(
        model, backend, n_trials, rng, backend_options, precision, service
    )
    lengths = tuple(int(length) for length in lengths)
    values = tuple(degree(FixedLength(length)) for length in lengths)
    return SweepResult(
        x_label="path length l",
        x_values=tuple(float(length) for length in lengths),
        series=(SweepSeries(label="F(l)", values=values),),
    )


def uniform_width_sweep(
    model: SystemModel,
    lower_bounds: Sequence[int],
    widths: Sequence[int],
    backend: str = "exact",
    n_trials: int = 10_000,
    rng: RandomSource = None,
    backend_options: dict | None = None,
    precision: float | None = None,
    service=None,
) -> SweepResult:
    """Anonymity degree of ``U(a, a + w)`` for each lower bound ``a`` and width ``w``.

    This is the parameterisation of Figure 4: each lower bound produces one
    curve over the shared width axis.  Widths that would exceed the longest
    feasible simple path are reported as ``nan`` so curves remain aligned.
    """
    degree = _degree_evaluator(
        model, backend, n_trials, rng, backend_options, precision, service
    )
    widths = tuple(int(w) for w in widths)
    series = []
    for low in lower_bounds:
        values = []
        for width in widths:
            high = low + width
            if high > model.max_simple_path_length:
                values.append(float("nan"))
                continue
            values.append(degree(UniformLength(low, high)))
        series.append(SweepSeries(label=f"U({low}, {low}+L)", values=tuple(values)))
    return SweepResult(
        x_label="range width L",
        x_values=tuple(float(w) for w in widths),
        series=tuple(series),
    )


def uniform_mean_sweep(
    model: SystemModel,
    lower_bounds: Sequence[int],
    means: Sequence[int],
    include_fixed: bool = True,
    backend: str = "exact",
    n_trials: int = 10_000,
    rng: RandomSource = None,
    backend_options: dict | None = None,
    precision: float | None = None,
    service=None,
) -> SweepResult:
    """Anonymity degree at equal expected length for fixed vs uniform strategies.

    This is Figure 5's parameterisation: the x axis is the expected path
    length ``L``; the curves are the fixed strategy ``F(L)`` and the uniform
    strategies ``U(a, 2L - a)`` (which have mean ``L``) for each requested
    lower bound ``a``.  Combinations where the implied upper bound is
    infeasible or below the lower bound are reported as ``nan``.
    """
    degree = _degree_evaluator(
        model, backend, n_trials, rng, backend_options, precision, service
    )
    means = tuple(int(mean) for mean in means)
    series = []
    if include_fixed:
        fixed_values = []
        for mean in means:
            if mean > model.max_simple_path_length:
                fixed_values.append(float("nan"))
            else:
                fixed_values.append(degree(FixedLength(mean)))
        series.append(SweepSeries(label="F(L)", values=tuple(fixed_values)))
    for low in lower_bounds:
        values = []
        for mean in means:
            high = 2 * mean - low
            if high < low or high > model.max_simple_path_length:
                values.append(float("nan"))
                continue
            values.append(degree(UniformLength(low, high)))
        series.append(SweepSeries(label=f"U({low}, 2L-{low})", values=tuple(values)))
    return SweepResult(
        x_label="expected path length L",
        x_values=tuple(float(mean) for mean in means),
        series=tuple(series),
    )


def adversary_model_sweep(
    n_nodes: int,
    distribution: PathLengthDistribution,
    lengths_or_models: Sequence[AdversaryModel] | None = None,
    backend: str = "exact",
    n_trials: int = 10_000,
    rng: RandomSource = None,
    backend_options: dict | None = None,
    precision: float | None = None,
    service=None,
) -> dict[str, float]:
    """Anonymity degree of one distribution under each adversary model."""
    models = lengths_or_models or list(AdversaryModel)
    # One shared generator so each adversary draws an independent child stream
    # (re-seeding per adversary would correlate their Monte-Carlo noise).
    generator = None if backend == "exact" else ensure_rng(rng)
    results = {}
    for adversary in models:
        system = SystemModel(n_nodes=n_nodes, n_compromised=1, adversary=adversary)
        results[adversary.value] = _degree_evaluator(
            system, backend, n_trials, generator, backend_options, precision, service
        )(distribution)
    return results
