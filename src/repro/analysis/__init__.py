"""Analysis helpers: sweeps, strategy comparisons, and text reports."""

from repro.analysis.compare import (
    StrategyComparison,
    compare_deployed_systems,
    compare_strategies,
)
from repro.analysis.overhead import (
    TradeoffPoint,
    anonymity_per_hop,
    evaluate_tradeoff,
    pareto_frontier,
)
from repro.analysis.report import (
    render_comparison,
    render_event_breakdown,
    render_key_points,
    render_sweep,
)
from repro.analysis.sweep import (
    SweepResult,
    SweepSeries,
    adversary_model_sweep,
    fixed_length_sweep,
    uniform_mean_sweep,
    uniform_width_sweep,
)

__all__ = [
    "TradeoffPoint",
    "evaluate_tradeoff",
    "pareto_frontier",
    "anonymity_per_hop",
    "SweepResult",
    "SweepSeries",
    "fixed_length_sweep",
    "uniform_width_sweep",
    "uniform_mean_sweep",
    "adversary_model_sweep",
    "StrategyComparison",
    "compare_strategies",
    "compare_deployed_systems",
    "render_sweep",
    "render_comparison",
    "render_event_breakdown",
    "render_key_points",
]
