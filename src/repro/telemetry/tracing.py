"""Hierarchical tracing: ``trace_span`` context managers over the registry clock.

A *span* is one timed stage of a request.  Spans nest through a thread-local
stack, so their paths reconstruct the call hierarchy without any plumbing::

    with trace_span("service.estimate", digest=digest[:16]):
        with trace_span("adaptive.run", backend="batch"):
            ...

produces the paths ``service.estimate`` and
``service.estimate/adaptive.run``.  On exit a span is recorded into the
active :class:`~repro.telemetry.metrics.MetricsRegistry` — appended to its
bounded span log and observed into the per-path ``span_seconds`` histogram —
and logged at ``DEBUG`` with its duration, both read from the registry's
injectable clock (so fake-clock tests see exact durations, and debug logs
agree with the metrics to the tick).

With telemetry disabled (the null registry) ``trace_span`` yields a shared
no-op span without reading the clock or touching the stack: the disabled
path is one ``enabled`` check.
"""

from __future__ import annotations

import logging
import threading
from contextlib import contextmanager
from dataclasses import dataclass

from repro.telemetry.metrics import get_registry

__all__ = ["SpanRecord", "Span", "trace_span", "current_span_path"]

logger = logging.getLogger(__name__)

_local = threading.local()


@dataclass(frozen=True)
class SpanRecord:
    """One finished span: its path in the hierarchy, timing, and attributes."""

    #: Slash-joined ancestry, e.g. ``service.estimate/adaptive.run``.
    path: str
    #: The leaf name this span was opened with.
    name: str
    #: Registry-clock reading when the span opened.
    start: float
    #: Registry-clock seconds between open and close.
    duration: float
    #: Sorted ``(key, value)`` string pairs attached at open or via annotate.
    attributes: tuple[tuple[str, str], ...]

    @property
    def depth(self) -> int:
        """Nesting depth (0 for a root span)."""
        return self.path.count("/")


class Span:
    """The live handle yielded inside a ``with trace_span(...)`` block."""

    __slots__ = ("path", "name", "_attributes")

    def __init__(self, path: str, name: str, attributes: dict) -> None:
        self.path = path
        self.name = name
        self._attributes = {str(k): str(v) for k, v in attributes.items()}

    def annotate(self, **attributes) -> None:
        """Attach attributes discovered mid-span (e.g. a resolved engine name)."""
        for key, value in attributes.items():
            self._attributes[str(key)] = str(value)

    def attribute_items(self) -> tuple[tuple[str, str], ...]:
        return tuple(sorted(self._attributes.items()))


class _NullSpan:
    """Shared no-op span for the disabled path."""

    __slots__ = ()
    path = ""
    name = ""

    def annotate(self, **attributes) -> None:
        pass

    def attribute_items(self) -> tuple:
        return ()


_NULL_SPAN = _NullSpan()


def current_span_path() -> str:
    """The path of the innermost open span on this thread ('' outside spans)."""
    stack = getattr(_local, "stack", None)
    return stack[-1] if stack else ""


@contextmanager
def trace_span(name: str, registry=None, **attributes):
    """Time one stage; record it into the (given or active) registry on exit.

    The span is recorded even when the block raises — a failed stage still
    shows up in the trace with its duration.  Nested calls on the same thread
    extend the path with ``/``; concurrent threads each carry their own
    stack, so parallel requests trace independently.
    """
    telemetry = registry if registry is not None else get_registry()
    if not telemetry.enabled:
        yield _NULL_SPAN
        return
    stack = getattr(_local, "stack", None)
    if stack is None:
        stack = _local.stack = []
    path = f"{stack[-1]}/{name}" if stack else name
    span = Span(path, name, attributes)
    stack.append(path)
    # A stage profiler (telemetry/profiling.py) rides the span boundaries;
    # the attribute is only read here, on the enabled path, so disabled
    # tracing stays one `enabled` check.
    profiler = getattr(telemetry, "profiler", None)
    if profiler is not None:
        profiler.span_started(path)
    started = telemetry.clock()
    try:
        yield span
    finally:
        duration = telemetry.clock() - started
        if profiler is not None:
            profiler.span_finished(path)
        stack.pop()
        telemetry.record_span(
            SpanRecord(
                path=path,
                name=name,
                start=started,
                duration=duration,
                attributes=span.attribute_items(),
            )
        )
        logger.debug("span %s: %.6fs", path, duration)
