"""Telemetry: metrics, tracing, and exposition for the estimation stack.

A zero-dependency observability layer with an off-by-default cost model:

:mod:`repro.telemetry.metrics`
    :class:`MetricsRegistry` — counters, gauges, and histograms with an
    injectable monotonic clock (deterministic under a fake clock), plus the
    no-op :data:`NULL_REGISTRY` that makes disabled instrumentation one
    attribute read per hot-path chunk.
:mod:`repro.telemetry.tracing`
    :func:`trace_span` — hierarchical, thread-local span context managers
    recorded into the registry's span log and ``span_seconds`` histograms.
:mod:`repro.telemetry.export`
    JSON and Prometheus text exposition, CLI table/tree renderers, and
    snapshot files (the CI metrics artifact).
:mod:`repro.telemetry.journal`
    :class:`RunJournal` — the append-only JSONL **run ledger** every service
    estimate can be recorded into, with rotation, a query API, and
    field-by-field run diffing (CLI ``repro-anon history``).
:mod:`repro.telemetry.profiling`
    :func:`profile_span` — opt-in cProfile harness aligned to the span
    hierarchy: per-stage exclusive hot-function tables (CLI ``--profile``).

Instrumented layers: ``TrialEngine.run_accumulate`` (per-chunk trials and
timings), ``ShardedBackend`` (per-shard worker timings), ``ResultCache``
(hit/miss/store counters), ``AdaptiveScheduler`` (convergence history and
stop reasons), and ``EstimationService`` (spans, single-flight dedup,
in-flight gauge).  Enable collection with :func:`activate`::

    from repro.telemetry import activate, render_text

    with activate() as telemetry:
        service.estimate(request)
    print(render_text(telemetry.snapshot()))

The metric catalogue, span hierarchy, and overhead contract live in
``docs/observability.md``.
"""

from repro.telemetry.export import (
    load_snapshot,
    render_json,
    render_prometheus,
    render_span_tree,
    render_text,
    write_snapshot,
)
from repro.telemetry.journal import (
    RunJournal,
    RunRecord,
    condense_spans,
    diff_records,
)
from repro.telemetry.metrics import (
    DEFAULT_RATE_BUCKETS,
    DEFAULT_TIME_BUCKETS,
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    activate,
    get_registry,
    set_registry,
)
from repro.telemetry.profiling import (
    StageProfiler,
    profile_as_dict,
    profile_span,
    render_profile,
    write_profile,
)
from repro.telemetry.tracing import Span, SpanRecord, current_span_path, trace_span

__all__ = [
    # Registry and primitives
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "Counter",
    "Gauge",
    "Histogram",
    "DEFAULT_TIME_BUCKETS",
    "DEFAULT_RATE_BUCKETS",
    "get_registry",
    "set_registry",
    "activate",
    # Tracing
    "trace_span",
    "Span",
    "SpanRecord",
    "current_span_path",
    # Exposition
    "render_json",
    "render_prometheus",
    "render_text",
    "render_span_tree",
    "write_snapshot",
    "load_snapshot",
    # Run ledger
    "RunJournal",
    "RunRecord",
    "diff_records",
    "condense_spans",
    # Profiling
    "StageProfiler",
    "profile_span",
    "render_profile",
    "profile_as_dict",
    "write_profile",
]
