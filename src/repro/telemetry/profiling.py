"""Span-aligned stage profiling: cProfile scoped to the active trace span.

Spans answer *which stage* of a request spent the time; this module answers
*which functions inside that stage*.  A :class:`StageProfiler` attached to
the active registry (usually via the :func:`profile_span` harness) runs one
:class:`cProfile.Profile` per span path, enabled exactly while that path is
the innermost open span on its thread:

* entering a child span suspends the parent's profile and resumes it when
  the child closes, so each stage's profile holds its **exclusive** time —
  ``service.estimate`` does not re-count what ``adaptive.run`` already
  attributes, and ``adaptive.run`` does not re-count ``engine.chunk``;
* repeated visits to the same path (every adaptive round's ``engine.chunk``)
  accumulate into one profile per ``(thread, path)``, merged across threads
  by :meth:`StageProfiler.stats`;
* code outside any span is never profiled — the profiler observes the same
  hierarchy the trace renders.

Cost model: profiling only exists behind an *enabled* registry whose
``profiler`` attribute is set.  The disabled telemetry path is untouched
(``trace_span`` returns before the attribute is read), and an enabled
registry without a profiler pays one ``getattr`` per span — both inside the
measured ≤5% contract of ``benchmarks/bench_overhead.py``.

CLI: ``repro-anon batch|estimate --profile`` prints the per-stage top-N
table (:func:`render_profile`); ``--profile-file`` saves the structured form
(:func:`write_profile`) for later inspection.
"""

from __future__ import annotations

import cProfile
import json
import os
import pstats
import threading
from contextlib import contextmanager
from pathlib import Path

from repro.telemetry.metrics import get_registry

__all__ = [
    "StageProfiler",
    "profile_span",
    "render_profile",
    "profile_as_dict",
    "write_profile",
]


def _function_label(func: tuple) -> str:
    """``file:line(name)`` for a pstats function key (built-ins included)."""
    filename, line, name = func
    if filename == "~" and line == 0:
        return name  # "{built-in method ...}" / "{method ... of ...}"
    return f"{Path(filename).name}:{line}({name})"


class StageProfiler:
    """One exclusive cProfile per span path, merged across threads.

    Thread model: each thread keeps its own span stack and its own
    ``path -> Profile`` table (cProfile instruments one thread at a time),
    registered under a lock so :meth:`stats` can merge everything at the
    end.  ``span_started``/``span_finished`` are called by ``trace_span``
    for every span while this profiler is attached to the active registry.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._local = threading.local()
        self._tables: list[dict[str, cProfile.Profile]] = []

    # ------------------------------------------------------------------ #
    # Span hooks (called by trace_span)                                   #
    # ------------------------------------------------------------------ #

    def _table(self) -> dict:
        table = getattr(self._local, "table", None)
        if table is None:
            table = self._local.table = {}
            with self._lock:
                self._tables.append(table)
        return table

    def _stack(self) -> list:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def span_started(self, path: str) -> None:
        """Suspend the enclosing stage's profile and start this path's."""
        stack = self._stack()
        if stack:
            stack[-1][1].disable()
        table = self._table()
        profile = table.get(path)
        if profile is None:
            profile = table[path] = cProfile.Profile()
        stack.append((path, profile))
        profile.enable()

    def span_finished(self, path: str) -> None:
        """Stop this path's profile and resume the enclosing stage's."""
        stack = self._stack()
        while stack:
            finished_path, profile = stack.pop()
            profile.disable()
            if finished_path == path:
                break
        if stack:
            stack[-1][1].enable()

    # ------------------------------------------------------------------ #
    # Results                                                             #
    # ------------------------------------------------------------------ #

    @property
    def paths(self) -> tuple[str, ...]:
        """Every span path that accumulated profile data, sorted."""
        with self._lock:
            tables = list(self._tables)
        return tuple(sorted({path for table in tables for path in table}))

    def stats(self) -> dict[str, pstats.Stats]:
        """Merged :class:`pstats.Stats` per span path, across threads."""
        with self._lock:
            tables = list(self._tables)
        merged: dict[str, pstats.Stats] = {}
        for table in tables:
            for path, profile in table.items():
                existing = merged.get(path)
                if existing is None:
                    merged[path] = pstats.Stats(profile)
                else:
                    existing.add(profile)
        return merged

    def top_functions(self, path: str, top: int = 10) -> list[dict]:
        """The ``top`` hottest functions of one stage, by cumulative time."""
        stats = self.stats().get(path)
        if stats is None:
            return []
        rows = []
        for func, (cc, nc, tt, ct, _callers) in stats.stats.items():
            rows.append(
                {
                    "function": _function_label(func),
                    "ncalls": nc,
                    "tottime": tt,
                    "cumtime": ct,
                }
            )
        rows.sort(key=lambda row: (-row["cumtime"], row["function"]))
        return rows[:top]


class _NullStageProfiler(StageProfiler):
    """The inert profiler :func:`profile_span` yields when telemetry is off."""

    def span_started(self, path: str) -> None:
        pass

    def span_finished(self, path: str) -> None:
        pass


@contextmanager
def profile_span(registry=None):
    """Attach a :class:`StageProfiler` to the (given or active) registry.

    Yields the profiler; every span traced inside the block contributes to
    its per-stage profiles.  The previous ``profiler`` attribute is restored
    on exit, so profiling never leaks out of scope.  With telemetry disabled
    (the null registry) an inert profiler is yielded and nothing is hooked —
    the disabled cost model is preserved.
    """
    telemetry = registry if registry is not None else get_registry()
    if not telemetry.enabled:
        yield _NullStageProfiler()
        return
    profiler = StageProfiler()
    previous = telemetry.profiler
    telemetry.profiler = profiler
    try:
        yield profiler
    finally:
        telemetry.profiler = previous


# ---------------------------------------------------------------------- #
# Rendering                                                               #
# ---------------------------------------------------------------------- #


def render_profile(profiler: StageProfiler, top: int = 10) -> str:
    """Per-stage top-N hot-function tables, one block per span path."""
    paths = profiler.paths
    if not paths:
        return "(no profile recorded)"
    blocks = []
    for path in paths:
        rows = profiler.top_functions(path, top=top)
        total = sum(row["tottime"] for row in rows)
        lines = [f"stage {path}  (self {total:.6f}s over top {len(rows)})"]
        lines.append(f"  {'ncalls':>8}  {'tottime':>10}  {'cumtime':>10}  function")
        for row in rows:
            lines.append(
                f"  {row['ncalls']:>8}  {row['tottime']:>10.6f}  "
                f"{row['cumtime']:>10.6f}  {row['function']}"
            )
        blocks.append("\n".join(lines))
    return "\n\n".join(blocks)


def profile_as_dict(profiler: StageProfiler, top: int = 25) -> dict:
    """The structured form behind ``--profile-file``: stage -> hot functions."""
    return {
        "stages": {
            path: profiler.top_functions(path, top=top)
            for path in profiler.paths
        }
    }


def write_profile(path, profiler: StageProfiler, top: int = 25) -> Path:
    """Write :func:`profile_as_dict` as JSON, atomically (tmp + replace)."""
    path = Path(path)
    payload = json.dumps(profile_as_dict(profiler, top=top), indent=2, sort_keys=True)
    temporary = path.with_suffix(f"{path.suffix}.tmp.{os.getpid()}")
    temporary.write_text(payload + "\n", encoding="ascii")
    os.replace(temporary, path)
    return path
