"""Zero-dependency metrics: counters, gauges, histograms, and a registry.

The estimation stack — ``TrialEngine.run_accumulate`` chunks, the sharded
worker pool, the result cache, the adaptive scheduler, and the service facade
— reports what it does through one :class:`MetricsRegistry`.  Three primitive
kinds cover everything the stack needs:

:class:`Counter`
    A monotone sum (trials processed, cache hits, adaptive stops).
:class:`Gauge`
    A settable level (in-flight requests).
:class:`Histogram`
    A bucketed distribution with exact ``count``/``sum``/``min``/``max``
    (chunk wall times, per-chunk trials/sec, span durations).  Bucket bounds
    are cumulative upper edges, Prometheus-style.

Metrics are identified by ``(name, labels)``: the same name with different
label values (``engine="five-class"`` vs ``engine="cycle"``) is a family of
independent series.  All mutation is thread-safe — the service's worker
threads share one registry.

**Determinism for tests** — the registry takes an injectable monotonic
``clock`` (default :func:`time.perf_counter`); every duration the telemetry
layer measures (span timings, chunk timings) reads this clock, so a test can
drive a fake clock and assert exact histogram contents.

**Off-by-default cost** — the process-wide active registry starts as the
:data:`NULL_REGISTRY`, whose metric handles are shared no-op singletons and
whose ``enabled`` flag lets hot paths skip even the timing reads::

    telemetry = get_registry()
    if telemetry.enabled:
        started = telemetry.clock()
        ...

With telemetry disabled the per-chunk cost is one attribute read and one
branch; ``benchmarks/bench_overhead.py`` holds this under 5% of chunk time.
Enable collection with :func:`set_registry` or the :func:`activate` context
manager; see ``docs/observability.md`` for the metric catalogue.
"""

from __future__ import annotations

import bisect
import logging
import re
import threading
import time
from collections import deque
from contextlib import contextmanager

from repro.exceptions import ConfigurationError
from repro.utils.env import environment_fingerprint

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "DEFAULT_TIME_BUCKETS",
    "DEFAULT_RATE_BUCKETS",
    "get_registry",
    "set_registry",
    "activate",
]

logger = logging.getLogger(__name__)

#: Snapshot schema version; bumped on incompatible layout changes so saved
#: snapshots (CI artifacts, ``repro-anon stats`` inputs) are never misread.
SNAPSHOT_VERSION = 1

#: Default histogram bucket upper edges for durations in seconds: 100 µs up
#: to one minute, roughly geometric, wide enough for a chunk and a request.
DEFAULT_TIME_BUCKETS = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0,
)

#: Default bucket upper edges for throughput rates (trials/sec): the engines
#: span ~1e3 (hop-by-hop) to ~1e8 (numpy kernels).
DEFAULT_RATE_BUCKETS = (
    1e2, 3e2, 1e3, 3e3, 1e4, 3e4, 1e5, 3e5, 1e6, 3e6, 1e7, 3e7, 1e8,
)

#: Metric names follow the Prometheus convention so exposition never has to
#: mangle them: lowercase words joined by underscores.
_NAME_RE = re.compile(r"^[a-z_][a-z0-9_]*$")


def _canonical_labels(labels: dict) -> tuple[tuple[str, str], ...]:
    """Sort and stringify a label mapping — the identity of one series."""
    return tuple(sorted((str(key), str(value)) for key, value in labels.items()))


class Counter:
    """A monotone sum; :meth:`inc` by non-negative amounts only."""

    __slots__ = ("name", "labels", "_value", "_lock")

    def __init__(self, name: str, labels: tuple[tuple[str, str], ...]) -> None:
        self.name = name
        self.labels = labels
        self._value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ConfigurationError(
                f"counter {self.name!r} cannot decrease (inc({amount}))"
            )
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value


class Gauge:
    """A settable level that can move both ways (e.g. in-flight requests)."""

    __slots__ = ("name", "labels", "_value", "_lock")

    def __init__(self, name: str, labels: tuple[tuple[str, str], ...]) -> None:
        self.name = name
        self.labels = labels
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> float:
        return self._value


class Histogram:
    """Cumulative-bucket histogram with exact count/sum/min/max.

    ``buckets`` are the finite upper edges; an implicit ``+Inf`` bucket
    catches the overflow, so :attr:`bucket_counts` has ``len(buckets) + 1``
    entries and the last one equals :attr:`count` when rendered cumulatively.
    """

    __slots__ = (
        "name", "labels", "buckets", "_counts", "_count", "_sum",
        "_min", "_max", "_lock",
    )

    def __init__(
        self,
        name: str,
        labels: tuple[tuple[str, str], ...],
        buckets: tuple[float, ...] = DEFAULT_TIME_BUCKETS,
    ) -> None:
        edges = tuple(sorted(float(edge) for edge in buckets))
        if not edges:
            raise ConfigurationError(f"histogram {name!r} needs >= 1 bucket edge")
        self.name = name
        self.labels = labels
        self.buckets = edges
        self._counts = [0] * (len(edges) + 1)
        self._count = 0
        self._sum = 0.0
        self._min = float("inf")
        self._max = float("-inf")
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        value = float(value)
        index = bisect.bisect_left(self.buckets, value)
        with self._lock:
            self._counts[index] += 1
            self._count += 1
            self._sum += value
            if value < self._min:
                self._min = value
            if value > self._max:
                self._max = value

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def min(self) -> float:
        """Smallest observation (``inf`` when empty)."""
        return self._min

    @property
    def max(self) -> float:
        """Largest observation (``-inf`` when empty)."""
        return self._max

    @property
    def mean(self) -> float:
        """Arithmetic mean of the observations (``nan`` when empty)."""
        return self._sum / self._count if self._count else float("nan")

    def bucket_counts(self) -> tuple[tuple[float, int], ...]:
        """Cumulative ``(upper_edge, count)`` pairs, ``+Inf`` last."""
        with self._lock:
            cumulative = []
            running = 0
            for edge, count in zip(self.buckets, self._counts):
                running += count
                cumulative.append((edge, running))
            cumulative.append((float("inf"), running + self._counts[-1]))
        return tuple(cumulative)


class MetricsRegistry:
    """One process-local family of metrics plus a bounded span log.

    Parameters
    ----------
    clock:
        Monotonic time source used for *every* duration the telemetry layer
        measures (spans, engine chunk timings).  Injectable so tests drive a
        fake clock and get bit-deterministic snapshots; defaults to
        :func:`time.perf_counter`.
    max_spans:
        Capacity of the finished-span log (oldest dropped first).  Span
        *aggregates* — the ``span_seconds`` histogram per span path — are
        unbounded and never dropped.
    """

    enabled = True

    #: Optional :class:`~repro.telemetry.profiling.StageProfiler` notified on
    #: span boundaries.  ``None`` (the default) keeps tracing profile-free;
    #: the attribute is only consulted on the enabled path, so the disabled
    #: cost model is untouched.
    profiler = None

    def __init__(self, clock=None, max_spans: int = 1024) -> None:
        if max_spans < 1:
            raise ConfigurationError(f"max_spans must be >= 1, got {max_spans}")
        self.clock = clock if clock is not None else time.perf_counter
        self._metrics: dict[tuple, object] = {}
        self._lock = threading.Lock()
        self._spans: deque = deque(maxlen=max_spans)

    # ------------------------------------------------------------------ #
    # Metric handles                                                      #
    # ------------------------------------------------------------------ #

    def _metric(self, kind: str, factory, name: str, labels: dict, **extra):
        if not _NAME_RE.match(name):
            raise ConfigurationError(
                f"metric name {name!r} must match [a-z_][a-z0-9_]* "
                "(lowercase words joined by underscores)"
            )
        key = (kind, name, _canonical_labels(labels))
        with self._lock:
            metric = self._metrics.get(key)
            if metric is None:
                metric = factory(name, key[2], **extra)
                self._metrics[key] = metric
            return metric

    def counter(self, name: str, **labels) -> Counter:
        """The counter registered under ``(name, labels)`` (created on demand)."""
        return self._metric("counter", Counter, name, labels)

    def gauge(self, name: str, **labels) -> Gauge:
        """The gauge registered under ``(name, labels)`` (created on demand)."""
        return self._metric("gauge", Gauge, name, labels)

    def histogram(
        self,
        name: str,
        buckets: tuple[float, ...] = DEFAULT_TIME_BUCKETS,
        **labels,
    ) -> Histogram:
        """The histogram under ``(name, labels)``; ``buckets`` applies on creation."""
        return self._metric("histogram", Histogram, name, labels, buckets=buckets)

    # ------------------------------------------------------------------ #
    # Spans                                                               #
    # ------------------------------------------------------------------ #

    def record_span(self, record) -> None:
        """Log one finished :class:`~repro.telemetry.tracing.SpanRecord`.

        The record lands in the bounded span log *and* feeds the per-path
        ``span_seconds`` histogram, so aggregates survive even after the raw
        log wraps.
        """
        self._spans.append(record)
        self.histogram("span_seconds", span=record.path).observe(record.duration)

    @property
    def spans(self) -> tuple:
        """Finished spans, oldest first (bounded by ``max_spans``)."""
        return tuple(self._spans)

    # ------------------------------------------------------------------ #
    # Snapshot                                                            #
    # ------------------------------------------------------------------ #

    def snapshot(self) -> dict:
        """One JSON-able view of every metric and the span log.

        Series are sorted by ``(name, labels)``, histograms carry their
        cumulative buckets, and nothing in the result depends on insertion
        order — under a fake clock the snapshot is fully deterministic.  An
        ``environment`` fingerprint (python, platform, repro version) makes a
        saved snapshot self-describing, like a ``BENCH_*.json`` record.
        """
        with self._lock:
            items = sorted(self._metrics.items(), key=lambda kv: (kv[0][1], kv[0][2]))
        counters, gauges, histograms = [], [], []
        for (kind, name, labels), metric in items:
            entry = {"name": name, "labels": dict(labels)}
            if kind == "counter":
                entry["value"] = metric.value
                counters.append(entry)
            elif kind == "gauge":
                entry["value"] = metric.value
                gauges.append(entry)
            else:
                count = metric.count
                entry.update(
                    count=count,
                    sum=metric.sum,
                    min=metric.min if count else None,
                    max=metric.max if count else None,
                    mean=metric.mean if count else None,
                    buckets=[
                        [edge if edge != float("inf") else "+Inf", total]
                        for edge, total in metric.bucket_counts()
                    ],
                )
                histograms.append(entry)
        return {
            "schema": SNAPSHOT_VERSION,
            "environment": environment_fingerprint(),
            "counters": counters,
            "gauges": gauges,
            "histograms": histograms,
            "spans": [
                {
                    "path": record.path,
                    "name": record.name,
                    "start": record.start,
                    "duration": record.duration,
                    "attributes": dict(record.attributes),
                }
                for record in self._spans
            ],
        }

    def reset(self) -> None:
        """Drop every metric and span (tests and long-lived services)."""
        with self._lock:
            self._metrics.clear()
        self._spans.clear()


# ---------------------------------------------------------------------- #
# The disabled path                                                       #
# ---------------------------------------------------------------------- #


class _NullCounter:
    """Shared no-op counter: the disabled path's ``inc`` costs one call."""

    __slots__ = ()
    name = "null"
    labels = ()
    value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        pass


class _NullGauge:
    __slots__ = ()
    name = "null"
    labels = ()
    value = 0.0

    def set(self, value: float) -> None:
        pass

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass


class _NullHistogram:
    __slots__ = ()
    name = "null"
    labels = ()
    buckets = ()
    count = 0
    sum = 0.0
    min = float("inf")
    max = float("-inf")
    mean = float("nan")

    def observe(self, value: float) -> None:
        pass

    def bucket_counts(self) -> tuple:
        return ()


class NullRegistry:
    """The off-by-default registry: every handle is a shared no-op singleton.

    Hot paths check :attr:`enabled` before reading the clock, so with the
    null registry active the instrumentation cost is one attribute read and
    one branch per chunk — the ≤5% overhead bound of
    ``benchmarks/bench_overhead.py`` rests on this class staying trivial.
    """

    enabled = False
    clock = staticmethod(time.perf_counter)
    profiler = None

    _counter = _NullCounter()
    _gauge = _NullGauge()
    _histogram = _NullHistogram()

    def counter(self, name: str, **labels) -> _NullCounter:
        return self._counter

    def gauge(self, name: str, **labels) -> _NullGauge:
        return self._gauge

    def histogram(self, name: str, buckets=DEFAULT_TIME_BUCKETS, **labels):
        return self._histogram

    def record_span(self, record) -> None:
        pass

    @property
    def spans(self) -> tuple:
        return ()

    def snapshot(self) -> dict:
        return {
            "schema": SNAPSHOT_VERSION,
            "environment": environment_fingerprint(),
            "counters": [],
            "gauges": [],
            "histograms": [],
            "spans": [],
        }

    def reset(self) -> None:
        pass


#: The process-wide disabled registry; ``get_registry()`` starts here.
NULL_REGISTRY = NullRegistry()

_active: MetricsRegistry | NullRegistry = NULL_REGISTRY


def get_registry() -> MetricsRegistry | NullRegistry:
    """The active registry (the :data:`NULL_REGISTRY` unless one was set)."""
    return _active


def set_registry(registry: MetricsRegistry | None):
    """Install ``registry`` as the active one; returns the previous registry.

    Passing ``None`` restores the disabled :data:`NULL_REGISTRY`.  Prefer the
    :func:`activate` context manager, which restores the previous registry on
    exit, for scoped collection.
    """
    global _active
    previous = _active
    _active = registry if registry is not None else NULL_REGISTRY
    logger.debug(
        "telemetry %s", "enabled" if _active.enabled else "disabled"
    )
    return previous


@contextmanager
def activate(registry: MetricsRegistry | None = None, clock=None):
    """Collect telemetry inside a ``with`` block; yields the live registry.

    ``registry=None`` creates a fresh :class:`MetricsRegistry` (with
    ``clock``, when given).  The previously active registry — usually the
    null one — is restored on exit, so collection never leaks out of scope::

        with activate() as telemetry:
            service.estimate(request)
        print(render_text(telemetry.snapshot()))
    """
    if registry is None:
        registry = MetricsRegistry(clock=clock)
    previous = set_registry(registry)
    try:
        yield registry
    finally:
        set_registry(previous if previous is not NULL_REGISTRY else None)
