"""Exposition: registry snapshots as JSON, Prometheus text, and CLI tables.

Everything renders from the plain-dict snapshot of
:meth:`~repro.telemetry.metrics.MetricsRegistry.snapshot`, so the formats can
never disagree with each other, and a snapshot written to disk
(:func:`write_snapshot` — the CI bench job's metrics artifact) renders
identically later (``repro-anon stats --metrics-file``).

Three renderers:

:func:`render_json`
    The snapshot itself, indented — the machine-readable interchange form.
:func:`render_prometheus`
    Prometheus text exposition (version 0.0.4): counters as ``_total``-style
    samples, histograms as cumulative ``_bucket{le=...}`` series plus
    ``_sum``/``_count``, every name prefixed ``repro_``.  Ready for a
    scrape endpoint when the ROADMAP's HTTP gateway lands.
:func:`render_text` / :func:`render_span_tree`
    Human-readable tables for the CLI's ``--metrics`` / ``--trace`` output.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.telemetry.metrics import get_registry

__all__ = [
    "render_json",
    "render_prometheus",
    "render_text",
    "render_span_tree",
    "write_snapshot",
    "load_snapshot",
]

#: Prefix stamped on every Prometheus metric name, namespacing the package.
PROMETHEUS_PREFIX = "repro_"


def _snapshot(source) -> dict:
    """Accept a registry, a snapshot dict, or ``None`` (the active registry)."""
    if source is None:
        return get_registry().snapshot()
    if isinstance(source, dict):
        return source
    return source.snapshot()


def render_json(source=None, indent: int = 2) -> str:
    """The snapshot as indented JSON (deterministic key order)."""
    return json.dumps(_snapshot(source), indent=indent, sort_keys=True)


# ---------------------------------------------------------------------- #
# Prometheus text exposition                                              #
# ---------------------------------------------------------------------- #


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _label_suffix(labels: dict, extra: dict | None = None) -> str:
    merged = dict(labels)
    if extra:
        merged.update(extra)
    if not merged:
        return ""
    body = ",".join(
        f'{key}="{_escape_label(str(value))}"' for key, value in sorted(merged.items())
    )
    return "{" + body + "}"


def render_prometheus(source=None, prefix: str = PROMETHEUS_PREFIX) -> str:
    """Prometheus text-format exposition of every counter/gauge/histogram.

    Histogram buckets are cumulative with a final ``le="+Inf"`` sample equal
    to ``_count``, per the exposition format; span durations appear as the
    ``span_seconds`` histogram family labelled by span path.
    """
    snapshot = _snapshot(source)
    lines: list[str] = []
    typed: set[str] = set()

    def _header(name: str, kind: str) -> None:
        if name not in typed:
            typed.add(name)
            lines.append(f"# TYPE {prefix}{name} {kind}")

    for entry in snapshot["counters"]:
        _header(entry["name"], "counter")
        lines.append(
            f"{prefix}{entry['name']}{_label_suffix(entry['labels'])} "
            f"{entry['value']:g}"
        )
    for entry in snapshot["gauges"]:
        _header(entry["name"], "gauge")
        lines.append(
            f"{prefix}{entry['name']}{_label_suffix(entry['labels'])} "
            f"{entry['value']:g}"
        )
    for entry in snapshot["histograms"]:
        name = entry["name"]
        _header(name, "histogram")
        for edge, cumulative in entry["buckets"]:
            le = "+Inf" if edge == "+Inf" else f"{float(edge):g}"
            lines.append(
                f"{prefix}{name}_bucket"
                f"{_label_suffix(entry['labels'], {'le': le})} {cumulative}"
            )
        suffix = _label_suffix(entry["labels"])
        lines.append(f"{prefix}{name}_sum{suffix} {entry['sum']:g}")
        lines.append(f"{prefix}{name}_count{suffix} {entry['count']}")
    return "\n".join(lines) + "\n"


# ---------------------------------------------------------------------- #
# Human-readable renderings (CLI)                                         #
# ---------------------------------------------------------------------- #


def _series_name(entry: dict) -> str:
    labels = entry["labels"]
    if not labels:
        return entry["name"]
    body = ", ".join(f"{key}={value}" for key, value in sorted(labels.items()))
    return f"{entry['name']}{{{body}}}"


def render_text(source=None) -> str:
    """Counters, gauges, and histogram summaries as an aligned text block."""
    snapshot = _snapshot(source)
    rows: list[tuple[str, str]] = []
    for entry in snapshot["counters"]:
        rows.append((_series_name(entry), f"{entry['value']:g}"))
    for entry in snapshot["gauges"]:
        rows.append((_series_name(entry), f"{entry['value']:g}"))
    for entry in snapshot["histograms"]:
        if not entry["count"]:
            continue
        rows.append(
            (
                _series_name(entry),
                f"count={entry['count']} sum={entry['sum']:.6g} "
                f"min={entry['min']:.6g} mean={entry['mean']:.6g} "
                f"max={entry['max']:.6g}",
            )
        )
    if not rows:
        return "(no metrics recorded)"
    width = max(len(name) for name, _ in rows)
    return "\n".join(f"{name:<{width}}  {value}" for name, value in rows)


def render_span_tree(source=None) -> str:
    """The span log as an indented tree, in completion order.

    Indentation follows each span's recorded path depth, so nested stages
    read as a call tree even though spans are logged on completion
    (children therefore appear above the parent that contains them).
    """
    snapshot = _snapshot(source)
    spans = snapshot["spans"]
    if not spans:
        return "(no spans recorded)"
    lines = []
    for span in spans:
        depth = span["path"].count("/")
        attributes = "".join(
            f" {key}={value}" for key, value in sorted(span["attributes"].items())
        )
        lines.append(
            f"{'  ' * depth}{span['path'].rsplit('/', 1)[-1]} "
            f"[{span['duration']:.6f}s]{attributes}"
        )
    return "\n".join(lines)


# ---------------------------------------------------------------------- #
# Snapshot files                                                          #
# ---------------------------------------------------------------------- #


def write_snapshot(path, source=None) -> Path:
    """Write the snapshot as JSON to ``path``; returns the path.

    This is the interchange file of the observability surface: the CI bench
    job uploads one as an artifact, and ``repro-anon stats --metrics-file``
    renders one back in any format.  The write is atomic (tmp +
    ``os.replace``, the ``ResultCache`` hygiene), so a crash or a concurrent
    reader never sees a torn snapshot.
    """
    path = Path(path)
    temporary = path.with_suffix(f"{path.suffix}.tmp.{os.getpid()}")
    temporary.write_text(render_json(source) + "\n", encoding="ascii")
    os.replace(temporary, path)
    return path


def load_snapshot(path) -> dict:
    """Read a snapshot written by :func:`write_snapshot` (schema-checked)."""
    data = json.loads(Path(path).read_text(encoding="ascii"))
    if not isinstance(data, dict) or "counters" not in data:
        raise ValueError(f"{path} is not a telemetry snapshot")
    return data
