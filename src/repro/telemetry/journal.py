"""The run ledger: an append-only JSONL journal of every estimate produced.

The paper's claims are quantitative, so the repo must be able to say *which
run produced which number, how fast, and whether it got slower*.  The
telemetry registry answers that for one in-process run and then forgets; the
:class:`RunJournal` makes it durable.  Every answered
:class:`~repro.service.service.EstimationService` request (and every CLI
``estimate`` run pointed at a journal) appends one :class:`RunRecord`:

* **identity** — the request's content digest plus its full canonical form,
  so any logged run can be re-submitted bit-identically
  (``EstimateRequest.from_canonical_dict(record.request)`` digests to the
  same key and hits the same cache entry);
* **provenance** — backend, seed, environment fingerprint (python, platform,
  repro version), whether the answer came from cache, and when;
* **result** — trials, estimate (decimal *and* ``float.hex`` for bit-exact
  comparison), CI half-width, stop reason, rounds, convergence history;
* **cost** — elapsed seconds plus per-span stage timings condensed from the
  active telemetry snapshot (empty when telemetry is off).

Appends are atomic: each record is one ``os.write`` of one complete line on
an ``O_APPEND`` descriptor, so concurrent writers interleave whole records,
never bytes.  The journal rotates at ``max_bytes`` (``journal.jsonl`` →
``journal.jsonl.1`` → ...), and readers skip corrupt or foreign lines
instead of failing.  Diffing two runs of the same digest
(:func:`diff_records`, CLI ``repro-anon history diff DIGEST``) separates
**payload** fields — which must be bit-identical for a deterministic request
— from **timing** fields, which legitimately differ run to run.
"""

from __future__ import annotations

import json
import logging
import os
import time
from dataclasses import dataclass, field, fields
from pathlib import Path

from typing import TYPE_CHECKING

from repro.exceptions import ConfigurationError
from repro.utils.env import environment_fingerprint

if TYPE_CHECKING:
    from repro.service.request import EstimateRequest
    from repro.service.service import ServiceResult
    from repro.telemetry.metrics import MetricsRegistry, NullRegistry

__all__ = [
    "RunRecord",
    "RunJournal",
    "diff_records",
    "condense_spans",
    "TIMING_FIELDS",
]

logger = logging.getLogger(__name__)

#: Record schema version; bumped on incompatible layout changes so old
#: journals are skipped as foreign instead of misread.
JOURNAL_VERSION = 1

#: Fields expected to differ between two runs of the same digest: wall-clock
#: and provenance, never the estimate.  Everything else is payload — the
#: determinism contract says it must be bit-identical.
TIMING_FIELDS = frozenset(
    {"recorded_at", "elapsed_seconds", "spans", "from_cache", "environment"}
)


def condense_spans(snapshot: dict) -> dict:
    """Per-span stage totals from a telemetry snapshot's histograms.

    Returns ``{span_path: {"count": n, "total_seconds": s}}`` — the stage
    timing summary a :class:`RunRecord` carries, built from the
    ``span_seconds`` histogram family so it survives span-log rotation.
    """
    spans: dict[str, dict] = {}
    for entry in snapshot.get("histograms", ()):
        if entry["name"] != "span_seconds" or not entry["count"]:
            continue
        spans[entry["labels"].get("span", "")] = {
            "count": entry["count"],
            "total_seconds": round(entry["sum"], 9),
        }
    return spans


@dataclass(frozen=True)
class RunRecord:
    """One ledger line: who asked for what, what came back, what it cost."""

    digest: str
    request: dict
    backend: str
    seed: int
    n_trials: int
    rounds: int
    converged: bool
    stop_reason: str
    estimate_bits: float
    estimate_hex: str
    ci_half_width_bits: float
    convergence_history: tuple[tuple[int, float], ...]
    from_cache: bool
    elapsed_seconds: float
    recorded_at: float
    environment: dict = field(default_factory=environment_fingerprint)
    spans: dict = field(default_factory=dict)
    schema: int = JOURNAL_VERSION

    @classmethod
    def from_result(
        cls,
        request: "EstimateRequest",
        result: "ServiceResult",
        registry: "MetricsRegistry | NullRegistry | None" = None,
        recorded_at: float | None = None,
    ) -> "RunRecord":
        """Build a record from an ``EstimateRequest`` and its ``ServiceResult``.

        ``registry`` (when given and enabled) contributes the condensed
        per-span stage timings; with the null registry ``spans`` stays empty.
        """
        spans: dict = {}
        if registry is not None and registry.enabled:
            spans = condense_spans(registry.snapshot())
        mean = result.report.estimate.mean
        return cls(
            digest=result.digest,
            request=request.canonical_dict(),
            backend=request.backend,
            seed=request.seed,
            n_trials=result.report.n_trials,
            rounds=result.rounds,
            converged=result.converged,
            stop_reason=result.stop_reason,
            estimate_bits=mean,
            estimate_hex=float(mean).hex(),
            ci_half_width_bits=result.half_width,
            convergence_history=tuple(
                (int(trials), float(width))
                for trials, width in result.convergence_history
            ),
            from_cache=result.from_cache,
            elapsed_seconds=result.elapsed_seconds,
            recorded_at=time.time() if recorded_at is None else recorded_at,
            spans=spans,
        )

    def as_dict(self) -> dict:
        """The JSON-able line form (convergence history as nested lists)."""
        data = {name.name: getattr(self, name.name) for name in fields(self)}
        data["convergence_history"] = [
            [trials, width] for trials, width in self.convergence_history
        ]
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "RunRecord":
        """Rebuild a record from one parsed journal line (schema-checked)."""
        if data.get("schema") != JOURNAL_VERSION:
            raise ValueError(f"unknown journal schema {data.get('schema')!r}")
        known = {entry.name for entry in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown journal fields {sorted(unknown)}")
        data = dict(data)
        data["convergence_history"] = tuple(
            (int(trials), float(width))
            for trials, width in data.get("convergence_history", ())
        )
        return cls(**data)


def diff_records(a: RunRecord, b: RunRecord) -> dict:
    """Field-by-field diff of two records: ``{"payload": ..., "timing": ...}``.

    Each side maps differing field names to ``(a_value, b_value)``.  For two
    runs of the same digest the determinism contract demands an empty
    ``payload`` side — estimate, trials, and convergence history bit-identical
    — while the ``timing`` side (wall clock, cache tier, stage timings) is
    free to differ.
    """
    payload: dict[str, tuple] = {}
    timing: dict[str, tuple] = {}
    for entry in fields(RunRecord):
        left = getattr(a, entry.name)
        right = getattr(b, entry.name)
        if left == right:
            continue
        bucket = timing if entry.name in TIMING_FIELDS else payload
        bucket[entry.name] = (left, right)
    return {"payload": payload, "timing": timing}


class RunJournal:
    """Append-only JSONL ledger with rotation and a query API.

    Parameters
    ----------
    path:
        The journal file (created, with parents, on the first append).
    max_bytes:
        Rotation threshold: when an append would push the file past this
        size, the file moves to ``<path>.1`` (older generations shift up to
        ``backups``) and a fresh journal starts.  Queries read the live file
        only — rotated generations are archives.
    backups:
        Rotated generations to keep (older ones are dropped).
    """

    def __init__(
        self,
        path: str | os.PathLike,
        max_bytes: int = 16 * 1024 * 1024,
        backups: int = 3,
    ) -> None:
        if max_bytes < 1:
            raise ConfigurationError(f"max_bytes must be >= 1, got {max_bytes}")
        if backups < 0:
            raise ConfigurationError(f"backups must be >= 0, got {backups}")
        self.path = Path(path)
        self.max_bytes = max_bytes
        self.backups = backups

    # ------------------------------------------------------------------ #
    # Writing                                                             #
    # ------------------------------------------------------------------ #

    def append(self, record: RunRecord) -> None:
        """Append one record as one atomic line (rotating first if needed)."""
        line = json.dumps(record.as_dict(), sort_keys=True) + "\n"
        payload = line.encode("ascii")
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._rotate_if_needed(len(payload))
        descriptor = os.open(
            self.path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644
        )
        try:
            os.write(descriptor, payload)
        finally:
            os.close(descriptor)

    def record(
        self,
        request: "EstimateRequest",
        result: "ServiceResult",
        registry: "MetricsRegistry | NullRegistry | None" = None,
    ) -> RunRecord:
        """Build a :class:`RunRecord` from a service result and append it."""
        entry = RunRecord.from_result(request, result, registry=registry)
        self.append(entry)
        return entry

    def _rotate_if_needed(self, incoming: int) -> None:
        try:
            size = self.path.stat().st_size
        except FileNotFoundError:
            return
        if size == 0 or size + incoming <= self.max_bytes:
            return
        if self.backups == 0:
            self.path.unlink(missing_ok=True)
            return
        for generation in range(self.backups - 1, 0, -1):
            older = self.path.with_name(f"{self.path.name}.{generation}")
            if older.exists():
                os.replace(
                    older, self.path.with_name(f"{self.path.name}.{generation + 1}")
                )
        os.replace(self.path, self.path.with_name(f"{self.path.name}.1"))
        logger.debug("rotated run journal %s (%d bytes)", self.path, size)

    # ------------------------------------------------------------------ #
    # Reading                                                             #
    # ------------------------------------------------------------------ #

    def records(self) -> list[RunRecord]:
        """Every readable record in the live journal, oldest first.

        Corrupt or foreign lines (a torn write survived a crash, an old
        schema) are skipped and counted in the debug log, never raised.
        """
        try:
            text = self.path.read_text(encoding="ascii")
        except FileNotFoundError:
            return []
        entries: list[RunRecord] = []
        skipped = 0
        for line in text.splitlines():
            if not line.strip():
                continue
            try:
                entries.append(RunRecord.from_dict(json.loads(line)))
            except (ValueError, KeyError, TypeError):
                skipped += 1
        if skipped:
            logger.debug("skipped %d unreadable journal line(s) in %s", skipped, self.path)
        return entries

    def query(
        self,
        digest: str | None = None,
        backend: str | None = None,
        since: float | None = None,
        until: float | None = None,
        limit: int | None = None,
    ) -> list[RunRecord]:
        """Records filtered by digest prefix, backend, and time range.

        ``digest`` matches as a prefix so the CLI's shortened digests work;
        ``since``/``until`` bound ``recorded_at`` (inclusive).  ``limit``
        keeps the **newest** matches.
        """
        matches = [
            record
            for record in self.records()
            if (digest is None or record.digest.startswith(digest))
            and (backend is None or record.backend == backend)
            and (since is None or record.recorded_at >= since)
            and (until is None or record.recorded_at <= until)
        ]
        if limit is not None and limit >= 0:
            matches = matches[-limit:] if limit else []
        return matches

    def last(self, digest: str, count: int = 2) -> list[RunRecord]:
        """The newest ``count`` records of one digest prefix, oldest first."""
        return self.query(digest=digest, limit=count)
