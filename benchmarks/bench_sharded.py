"""Scaling benchmark: the sharded multiprocess backend vs single-process batch.

This is the perf record for the ``sharded`` backend of
:mod:`repro.batch.sharded`: one large estimation job on the
multi-compromised arrangement-class engine (N=30 nodes, three compromised,
uniform path lengths) run

* single-process through the ``batch`` backend, and
* through the ``sharded`` backend with a 4-worker ``spawn`` pool.

Both runs use the pure-Python columnar core (``use_numpy=False``) so the
kernels are CPU-bound interpreter work — the regime sharding exists for; the
NumPy kernels finish the same job so quickly that process startup, not
compute, would dominate.  The asserted floor — **sharded >= 2x the
single-process wall clock at 4 workers** — is the acceptance criterion of the
backend; near-linear scaling (3x+ on 4 idle cores) is typical because the
only serial work is the per-worker spawn and a merge of per-class
accumulators a few hundred bytes in size.

The speedup measurement is skipped up front on machines with fewer than 4
CPUs (the backend still runs there — shards just queue on the available
cores — but timing it proves nothing), so the floor is enforced where it is
meaningful: the CI benchmark job.  The statistical-parity test always runs.

The measurement writes a machine-readable ``BENCH_sharded.json`` record (see
:mod:`perf_record`).  Under ``--smoke`` the trial budget shrinks to a size
where process spawn overhead is comparable to compute, so the record is
written but the 2x floor is not asserted.

Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_sharded.py -q -s
"""

from __future__ import annotations

import os
import time

import pytest
from perf_record import write_record

from repro.batch import BatchMonteCarlo, ShardedBackend
from repro.core.model import SystemModel
from repro.distributions import UniformLength
from repro.routing.strategies import PathSelectionStrategy

#: The workload: a multi-compromised model on the arrangement-class engine.
N_NODES = 30
N_COMPROMISED = 3
DISTRIBUTION = UniformLength(1, 8)
N_TRIALS = 6_000_000
SMOKE_TRIALS = 400_000
WORKERS = 4
#: Acceptance floor for the 4-worker pool over the single-process run.
MIN_SPEEDUP = 2.0


def _workload():
    model = SystemModel(n_nodes=N_NODES, n_compromised=N_COMPROMISED)
    strategy = PathSelectionStrategy(DISTRIBUTION.name, DISTRIBUTION)
    return model, strategy


def test_sharded_matches_single_process_statistics():
    """Sanity before speed: sharded and batch estimates agree statistically."""
    model, strategy = _workload()
    single = BatchMonteCarlo(model, strategy).run(200_000, rng=0)
    sharded = ShardedBackend(workers=1, shards=WORKERS).estimate(
        model, strategy, n_trials=200_000, rng=0
    )
    # Two independent samplings of the same quantity: compare through CIs.
    gap = abs(single.degree_bits - sharded.degree_bits)
    tolerance = 3.0 * (single.estimate.std_error + sharded.estimate.std_error)
    assert gap <= tolerance, (
        f"batch {single.estimate} vs sharded {sharded.estimate} differ by {gap:.5f}"
    )


def test_sharded_speedup_floor(smoke):
    """The acceptance criterion: 4 sharded workers >= 2x single-process batch."""
    cpus = os.cpu_count() or 1
    if cpus < WORKERS and not smoke:
        pytest.skip(
            f"only {cpus} CPU(s) visible; the {MIN_SPEEDUP}x floor is enforced "
            f"on >= {WORKERS}-core machines (CI)"
        )
    # Smoke mode never asserts the floor, so it can still record a number on
    # small machines by shrinking the pool to the visible cores.
    workers = min(WORKERS, cpus) if smoke else WORKERS
    n_trials = SMOKE_TRIALS if smoke else N_TRIALS
    model, strategy = _workload()

    single_estimator = BatchMonteCarlo(model, strategy, use_numpy=False)
    started = time.perf_counter()
    single_report = single_estimator.run(n_trials, rng=0)
    single_seconds = time.perf_counter() - started

    backend = ShardedBackend(workers=workers, shards=WORKERS, use_numpy=False)
    started = time.perf_counter()
    sharded_report = backend.estimate(model, strategy, n_trials=n_trials, rng=0)
    sharded_seconds = time.perf_counter() - started

    speedup = single_seconds / sharded_seconds
    print()
    print(f"batch  (1 process)  : {single_seconds:8.2f}s "
          f"({n_trials / single_seconds:,.0f} trials/sec)")
    print(f"sharded ({workers} workers) : {sharded_seconds:8.2f}s "
          f"({n_trials / sharded_seconds:,.0f} trials/sec)")
    print(f"speedup             : {speedup:8.2f}x")
    print(f"batch estimate   {single_report.estimate}")
    print(f"sharded estimate {sharded_report.estimate}")

    write_record(
        "sharded",
        smoke=smoke,
        config={
            "n_nodes": N_NODES,
            "n_compromised": N_COMPROMISED,
            "n_trials": n_trials,
            "workers": workers,
            "shards": WORKERS,
            "distribution": DISTRIBUTION.name,
            "floor_speedup": MIN_SPEEDUP,
        },
        single_seconds=round(single_seconds, 3),
        sharded_seconds=round(sharded_seconds, 3),
        single_trials_per_sec=round(n_trials / single_seconds, 1),
        sharded_trials_per_sec=round(n_trials / sharded_seconds, 1),
        speedup=round(speedup, 2),
    )

    gap = abs(single_report.degree_bits - sharded_report.degree_bits)
    tolerance = 3.0 * (
        single_report.estimate.std_error + sharded_report.estimate.std_error
    )
    assert gap <= tolerance

    if smoke:
        return  # spawn overhead dominates the reduced budget; record only
    assert speedup >= MIN_SPEEDUP, (
        f"sharded backend reached only {speedup:.2f}x over single-process "
        f"batch; the floor at {WORKERS} workers is {MIN_SPEEDUP}x"
    )
