"""Machine-readable benchmark records.

Each headline benchmark writes one ``BENCH_<name>.json`` file next to the
working directory it runs in (CI uploads them as artifacts), so the perf
trajectory — trials/sec, speedups, and the configuration that produced them —
is tracked *across PRs* instead of living only in scrolled-away job logs.

The schema is deliberately flat: a ``benchmark`` name, a ``smoke`` flag
(reduced workloads used by the CI smoke job; floors are only asserted on the
full workloads), a ``config`` mapping, and top-level numeric results.  Keep
keys stable — downstream tooling diffs these files between runs.
"""

from __future__ import annotations

import json
import platform
import sys
from pathlib import Path

__all__ = ["write_record"]


def write_record(name: str, smoke: bool, config: dict, **results) -> Path:
    """Write ``BENCH_<name>.json`` in the current directory; returns the path.

    ``config`` holds the workload parameters (trial counts, system size,
    distribution); ``results`` the measured numbers.  A small ``environment``
    block records the interpreter and machine the numbers came from.
    """
    payload = {
        "benchmark": name,
        "smoke": bool(smoke),
        "config": config,
        "environment": {
            "python": sys.version.split()[0],
            "platform": platform.platform(),
        },
        **results,
    }
    path = Path(f"BENCH_{name}.json")
    path.write_text(json.dumps(payload, indent=2, sort_keys=False) + "\n")
    print(f"\n[perf_record] wrote {path.resolve()}")
    return path
