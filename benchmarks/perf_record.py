"""Machine-readable benchmark records.

Each headline benchmark writes one ``BENCH_<name>.json`` file next to the
working directory it runs in (CI uploads them as artifacts), so the perf
trajectory — trials/sec, speedups, and the configuration that produced them —
is tracked *across PRs* instead of living only in scrolled-away job logs.

The schema is deliberately flat: a ``benchmark`` name, a ``smoke`` flag
(reduced workloads used by the CI smoke job; floors are only asserted on the
full workloads), a ``config`` mapping, and top-level numeric results.  Keep
keys stable — downstream tooling diffs these files between runs.  A benchmark
with several cases (e.g. the cycle engine's ``C = 1`` and ``C = 2`` runs)
extends its record with :func:`update_record` instead of clobbering it.

``python benchmarks/perf_record.py --summary`` consolidates every
``BENCH_*.json`` in the working directory into one ``BENCH_summary.json`` —
the whole perf trajectory of a run as a single artifact, so the numbers can
be diffed between CI runs as a unit.  ``--history BENCH_history.jsonl``
additionally appends one compact line per record to a cross-run history
file — keyed by benchmark, environment fingerprint, and git sha — which is
what ``scripts/compare_bench.py --trend`` reads to flag drops against the
rolling median of previous same-environment runs.
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
import sys
import time
from pathlib import Path

__all__ = [
    "write_record",
    "update_record",
    "merge_records",
    "telemetry_breakdown",
    "append_history",
]

#: File name of the consolidated record; excluded from its own merge.
SUMMARY_NAME = "BENCH_summary.json"

#: Default name of the cross-run perf-trajectory file (JSONL, one line/record).
HISTORY_NAME = "BENCH_history.jsonl"


def _environment() -> dict:
    """The interpreter/machine block stamped into every record.

    Uses the library's environment fingerprint when importable; CI invokes
    this file without ``PYTHONPATH=src``, so fall back to the same two keys
    the fingerprint is built from rather than failing the consolidate step.
    """
    try:
        from repro.utils.env import environment_fingerprint
    except ImportError:
        return {
            "python": sys.version.split()[0],
            "platform": platform.platform(),
        }
    return environment_fingerprint()


def _git_sha() -> str:
    """The commit the numbers came from: CI env var, then git, then unknown."""
    sha = os.environ.get("GITHUB_SHA")
    if sha:
        return sha[:12]
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short=12", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    return out.stdout.strip() or "unknown" if out.returncode == 0 else "unknown"


def write_record(name: str, smoke: bool, config: dict, **results) -> Path:
    """Write ``BENCH_<name>.json`` in the current directory; returns the path.

    ``config`` holds the workload parameters (trial counts, system size,
    distribution); ``results`` the measured numbers.  A small ``environment``
    block records the interpreter and machine the numbers came from.
    """
    payload = {
        "benchmark": name,
        "smoke": bool(smoke),
        "config": config,
        "environment": _environment(),
        **results,
    }
    path = Path(f"BENCH_{name}.json")
    path.write_text(json.dumps(payload, indent=2, sort_keys=False) + "\n")
    print(f"\n[perf_record] wrote {path.resolve()}")
    return path


def update_record(name: str, **results) -> Path:
    """Merge ``results`` into an existing ``BENCH_<name>.json`` record.

    Lets several benchmark cases of one suite (run as separate tests)
    contribute to a single record without clobbering each other; when the
    record does not exist yet — e.g. a single case run in isolation — a
    minimal one is created.  Top-level keys overwrite, the ``config`` mapping
    merges key-wise.
    """
    path = Path(f"BENCH_{name}.json")
    if path.exists():
        payload = json.loads(path.read_text())
    else:
        payload = {
            "benchmark": name,
            "smoke": False,
            "config": {},
            "environment": _environment(),
        }
    extra_config = results.pop("config", None)
    if extra_config:
        merged = dict(payload.get("config", {}))
        merged.update(extra_config)
        payload["config"] = merged
    payload.update(results)
    path.write_text(json.dumps(payload, indent=2, sort_keys=False) + "\n")
    print(f"\n[perf_record] updated {path.resolve()}")
    return path


def telemetry_breakdown(snapshot: dict) -> dict:
    """Condense a telemetry snapshot into per-stage headline numbers.

    Benchmarks that run under an active
    :class:`~repro.telemetry.MetricsRegistry` embed this in their record
    (``telemetry=telemetry_breakdown(registry.snapshot())``), so
    ``BENCH_summary.json`` carries a per-stage breakdown — span totals,
    per-engine chunk timings, cache and scheduler counters — next to the
    end-to-end numbers.
    """
    series_name = lambda entry: entry["name"] + (  # noqa: E731
        "{" + ",".join(f"{k}={v}" for k, v in sorted(entry["labels"].items())) + "}"
        if entry["labels"]
        else ""
    )
    spans = {}
    timings = {}
    for entry in snapshot.get("histograms", []):
        if not entry["count"]:
            continue
        stage = {
            "count": entry["count"],
            "total_seconds": round(entry["sum"], 6),
            "mean_seconds": round(entry["sum"] / entry["count"], 6),
        }
        if entry["name"] == "span_seconds":
            spans[entry["labels"].get("span", "")] = stage
        elif entry["name"].endswith("_seconds"):
            timings[series_name(entry)] = stage
    return {
        "spans": spans,
        "stage_timings": timings,
        "counters": {
            series_name(entry): entry["value"]
            for entry in snapshot.get("counters", [])
        },
    }


def merge_records(directory: str | Path = ".") -> Path:
    """Consolidate every ``BENCH_*.json`` into one ``BENCH_summary.json``.

    The summary maps each benchmark name to its full record, so the perf
    trajectory of a run is readable — and diffable between CI runs — as a
    unit instead of as scattered per-benchmark files.
    """
    directory = Path(directory)
    records: dict[str, dict] = {}
    for path in sorted(directory.glob("BENCH_*.json")):
        if path.name == SUMMARY_NAME:
            continue
        data = json.loads(path.read_text())
        records[str(data.get("benchmark", path.stem))] = data
    payload = {
        "benchmark": "summary",
        "environment": _environment(),
        "record_count": len(records),
        "records": records,
    }
    path = directory / SUMMARY_NAME
    path.write_text(json.dumps(payload, indent=2, sort_keys=False) + "\n")
    print(f"[perf_record] consolidated {len(records)} record(s) into {path.resolve()}")
    return path


def append_history(
    directory: str | Path = ".",
    history_path: str | Path = HISTORY_NAME,
    git_sha: str | None = None,
    timestamp: float | None = None,
) -> int:
    """Append one JSONL history line per ``BENCH_*.json`` record; returns how many.

    Each line carries the benchmark name, smoke flag, timestamp, git sha,
    environment fingerprint, the record's top-level *numeric* results, and
    its config — the minimum ``compare_bench.py --trend`` needs to compare a
    new number against previous runs of the same benchmark on the same
    environment.  Appending (never rewriting) keeps the file a trajectory:
    CI restores it from the previous run, adds today's lines, re-uploads.
    """
    directory = Path(directory)
    history = Path(history_path)
    sha = _git_sha() if git_sha is None else git_sha
    recorded_at = time.time() if timestamp is None else timestamp
    lines: list[str] = []
    for path in sorted(directory.glob("BENCH_*.json")):
        if path.name == SUMMARY_NAME:
            continue
        data = json.loads(path.read_text())
        results = {
            key: value
            for key, value in data.items()
            if isinstance(value, (int, float)) and not isinstance(value, bool)
        }
        entry = {
            "benchmark": str(data.get("benchmark", path.stem)),
            "smoke": bool(data.get("smoke", False)),
            "recorded_at": recorded_at,
            "git_sha": sha,
            "environment": data.get("environment", _environment()),
            "results": results,
            "config": data.get("config", {}),
        }
        lines.append(json.dumps(entry, sort_keys=True))
    if lines:
        history.parent.mkdir(parents=True, exist_ok=True)
        with history.open("a", encoding="ascii") as handle:
            handle.write("\n".join(lines) + "\n")
    print(f"[perf_record] appended {len(lines)} record(s) to {history.resolve()}")
    return len(lines)


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--summary",
        action="store_true",
        help="merge every BENCH_*.json in the working directory into BENCH_summary.json",
    )
    parser.add_argument(
        "--directory", default=".", help="directory holding the records"
    )
    parser.add_argument(
        "--history",
        default=None,
        metavar="PATH",
        help="also append one JSONL line per record to this cross-run "
        "history file (read by compare_bench.py --trend)",
    )
    arguments = parser.parse_args()
    if not arguments.summary and arguments.history is None:
        parser.error("nothing to do; pass --summary and/or --history")
    if arguments.summary:
        merge_records(arguments.directory)
    if arguments.history is not None:
        append_history(arguments.directory, history_path=arguments.history)
