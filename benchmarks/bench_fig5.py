"""Benchmark harness for Figure 5: fixed vs uniform strategies at equal expectation.

Each panel compares ``F(L)`` against ``U(a, 2L - a)`` (same mean ``L``) for
``N = 100``, ``C = 1``.  The paper's finding: once the lower bound is at least
a few hops the curves coincide — the anonymity degree is governed by the
expectation of the path length — while for small expectations the variance
matters.  The coincidence is asserted to within 0.02 bits; the direction of
the small-expectation variance effect differs from the paper under our
re-derived posterior model and is recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

from repro.experiments.fig5 import figure5a, figure5b, figure5c, figure5d


def test_fig5a(benchmark, run_and_report):
    """Panel (a): lower bounds 4, 6, 10 overlay the fixed-length curve."""
    data = run_and_report(benchmark, figure5a)
    for name, gap in data.key_points.items():
        assert gap < 0.02, f"{name} = {gap}"


def test_fig5b(benchmark, run_and_report):
    """Panel (b): lower bounds 25, 40 overlay the fixed-length curve."""
    run_and_report(benchmark, figure5b)


def test_fig5c(benchmark, run_and_report):
    """Panel (c): lower bounds 51, 70 overlay the fixed-length curve."""
    run_and_report(benchmark, figure5c)


def test_fig5d(benchmark, run_and_report):
    """Panel (d): at small expectations the variance of the length matters."""
    run_and_report(benchmark, figure5d)
