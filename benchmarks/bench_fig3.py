"""Benchmark harness for Figure 3: anonymity degree vs fixed path length.

Figure 3(a): ``H*(S)`` for ``F(l)``, ``l = 1 .. 100``, ``N = 100``, ``C = 1``.
Figure 3(b): the short-path region ``l = 0 .. 4``.

Paper values (read off the figures): the curve lives between roughly 6.48 and
6.54 bits, starts around 6.48–6.50 for short paths, peaks near 6.535 at an
intermediate length (the paper reports the maximum around ``l ≈ 32``), and
decreases again for very long paths (the *long-path effect*).  Our re-derived
model reproduces the band, the short-path plateau, and the interior maximum;
the peak sits at a longer length and the terminal decline is shallower (see
EXPERIMENTS.md for the side-by-side numbers).
"""

from __future__ import annotations

from repro.experiments.fig3 import figure3a, figure3b


def test_fig3a(benchmark, run_and_report):
    """Regenerate Figure 3(a) and validate the long-path effect."""
    data = run_and_report(benchmark, figure3a)
    values = data.sweep.series[0].values
    # The whole curve stays within the paper's band for N=100, C=1.
    assert all(6.4 < value < 6.6 for value in values)


def test_fig3b(benchmark, run_and_report):
    """Regenerate Figure 3(b) and validate the short-path effect."""
    data = run_and_report(benchmark, figure3b)
    by_length = dict(zip(data.sweep.x_values, data.sweep.series[0].values))
    assert by_length[0.0] == 0.0
    assert 6.4 < by_length[1.0] < 6.55
    assert by_length[4.0] > by_length[2.0]
