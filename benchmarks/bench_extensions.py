"""Benchmark harness for the extension studies.

These go beyond the paper's figures using the same machinery: more compromised
nodes, weaker/stronger adversaries, the deployed systems of Section 2, a full
discrete-event validation of the analytics, and the long-term predecessor
attack the paper cites as follow-up work.
"""

from __future__ import annotations

from repro.experiments.extensions import (
    adversary_ablation,
    compromised_sweep,
    cycle_validation,
    predecessor_attack_rounds,
    protocol_comparison,
    simulation_validation,
)


def test_compromised_sweep(benchmark, run_and_report):
    """Anonymity degree versus the number of compromised nodes (exact + Monte-Carlo)."""
    run_and_report(benchmark, compromised_sweep)


def test_adversary_ablation(benchmark, run_and_report):
    """Full-Bayes vs position-aware vs predecessor-only adversaries."""
    run_and_report(benchmark, adversary_ablation)


def test_protocol_comparison(benchmark, run_and_report):
    """Ranking of the deployed systems surveyed in Section 2 of the paper."""
    data = run_and_report(benchmark, protocol_comparison)
    assert "ranking (best to worst)" in data.key_points


def test_simulation_validation(benchmark, run_and_report):
    """The discrete-event simulator reproduces the closed-form degrees."""
    run_and_report(benchmark, simulation_validation)


def test_predecessor_attack(benchmark, run_and_report):
    """Repeated Crowds paths fall to the predecessor attack (Wright et al.)."""
    run_and_report(benchmark, predecessor_attack_rounds)


def test_cycle_validation(benchmark, run_and_report):
    """The vectorized cycle engine reproduces the exhaustive/event references."""
    run_and_report(benchmark, cycle_validation)
