"""Benchmark harness for the closed-form special cases (Theorems 1–3).

The re-derived closed forms are timed and cross-validated against the
event-class engine (same model, independent code path) and against exhaustive
enumeration of a small system (no shared code or symmetry arguments at all).
"""

from __future__ import annotations

from repro.core.closed_form import fixed_length_degree
from repro.experiments.theorems import theorem1, theorem2, theorem3


def test_theorem1(benchmark, run_and_report):
    """Theorem 1: fixed-length closed form, validated two independent ways."""
    data = run_and_report(benchmark, theorem1)
    assert data.key_points["max |closed - engine| (N=100)"] < 1e-9


def test_theorem2(benchmark, run_and_report):
    """Theorem 2: two-point length distribution."""
    run_and_report(benchmark, theorem2)


def test_theorem3(benchmark, run_and_report):
    """Theorem 3: uniform length distribution; degree tracks the expectation."""
    data = run_and_report(benchmark, theorem3)
    assert data.key_points["max |U(4, 2L-4) - F(L)| over the sweep (bits)"] < 0.02


def test_closed_form_throughput(benchmark):
    """Raw throughput of the Theorem 1 closed form over a full length sweep.

    This is the kernel every figure sweep calls in its inner loop, so its
    speed bounds the cost of the whole reproduction.
    """

    def sweep():
        return [fixed_length_degree(100, length) for length in range(0, 100)]

    values = benchmark(sweep)
    assert len(values) == 100
    assert max(values) < 6.6
