"""Benchmark harness for Figure 4: uniform strategies, effect of the expectation.

Each panel fixes the lower bound ``a`` of ``U(a, a+L)`` and sweeps the range
width ``L`` for ``N = 100``, ``C = 1``.  The paper's qualitative findings per
panel (growth for small lower bounds, near-flat behaviour for intermediate
ones, decline for large ones — the long-path effect — and the short-path
penalty when length 0 is included) are asserted by the experiment checks.
"""

from __future__ import annotations

from repro.experiments.fig4 import figure4a, figure4b, figure4c, figure4d


def test_fig4a(benchmark, run_and_report):
    """Panel (a): lower bounds 4, 6, 10 — widening the range helps."""
    run_and_report(benchmark, figure4a)


def test_fig4b(benchmark, run_and_report):
    """Panel (b): lower bounds 25, 40 — the intermediate, nearly flat regime."""
    run_and_report(benchmark, figure4b)


def test_fig4c(benchmark, run_and_report):
    """Panel (c): lower bounds 51, 60, 70 — the long-path effect dominates."""
    run_and_report(benchmark, figure4c)


def test_fig4d(benchmark, run_and_report):
    """Panel (d): lower bounds 0, 1, 6 — the short-path penalty of length 0."""
    data = run_and_report(benchmark, figure4d)
    u0 = data.sweep.series_by_label("U(0, 0+L)").values
    u6 = data.sweep.series_by_label("U(6, 6+L)").values
    # Narrow ranges that include a direct (length-0) path are clearly worse.
    assert u0[0] < u6[0]
