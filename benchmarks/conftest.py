"""Shared helpers for the benchmark harness.

Every benchmark regenerates the data behind one figure (or theorem, or
extension study) of the paper, prints it as a text table — so the benchmark
log is itself the reproduction record — and asserts the paper's qualitative
claims on the regenerated data.  Timing comes from ``pytest-benchmark``.

Run with::

    pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import pytest


def pytest_addoption(parser):
    """``--smoke``: reduced workloads for the CI smoke job.

    In smoke mode the headline benchmarks (``bench_batch``, ``bench_sharded``,
    ``bench_service``) shrink their trial counts so the whole run takes
    seconds, still exercising every code path and still writing their
    ``BENCH_*.json`` records — but performance *floors* are only asserted on
    the full workloads, where timing is meaningful.
    """
    parser.addoption(
        "--smoke",
        action="store_true",
        default=False,
        help="run reduced benchmark workloads (records written, floors not asserted)",
    )


@pytest.fixture
def smoke(request) -> bool:
    """Whether ``--smoke`` was passed on the command line."""
    return bool(request.config.getoption("--smoke"))


def report(data) -> None:
    """Print one experiment's rendered tables, fenced for readability."""
    print()
    print("=" * 78)
    print(data.render())
    print("=" * 78)


@pytest.fixture
def run_and_report():
    """Benchmark an experiment generator once and print its rendered output."""

    def runner(benchmark, generator, *args, **kwargs):
        data = benchmark.pedantic(
            lambda: generator(*args, **kwargs), rounds=1, iterations=1
        )
        report(data)
        failed = [name for name, ok in data.checks.items() if not ok]
        assert not failed, f"qualitative checks failed: {failed}"
        return data

    return runner
