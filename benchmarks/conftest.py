"""Shared helpers for the benchmark harness.

Every benchmark regenerates the data behind one figure (or theorem, or
extension study) of the paper, prints it as a text table — so the benchmark
log is itself the reproduction record — and asserts the paper's qualitative
claims on the regenerated data.  Timing comes from ``pytest-benchmark``.

Run with::

    pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import pytest


def report(data) -> None:
    """Print one experiment's rendered tables, fenced for readability."""
    print()
    print("=" * 78)
    print(data.render())
    print("=" * 78)


@pytest.fixture
def run_and_report():
    """Benchmark an experiment generator once and print its rendered output."""

    def runner(benchmark, generator, *args, **kwargs):
        data = benchmark.pedantic(
            lambda: generator(*args, **kwargs), rounds=1, iterations=1
        )
        report(data)
        failed = [name for name, ok in data.checks.items() if not ok]
        assert not failed, f"qualitative checks failed: {failed}"
        return data

    return runner
