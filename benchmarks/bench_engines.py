"""Micro-benchmarks of the computational engines themselves.

These are not paper figures; they document the cost of the building blocks a
downstream user composes: the exact anonymity-degree computation, the
Bayesian posterior for one observation, the optimizer, a single end-to-end
protocol transmission, and the Monte-Carlo estimator.
"""

from __future__ import annotations

import numpy as np

from repro.adversary.inference import BayesianPathInference
from repro.adversary.observation import observation_from_path
from repro.core.anonymity import AnonymityAnalyzer
from repro.core.model import SystemModel
from repro.core.optimizer import best_uniform_for_mean
from repro.distributions import FixedLength, UniformLength
from repro.protocols import OnionRoutingI
from repro.routing.strategies import deployed_system_strategies
from repro.simulation import AnonymousCommunicationSystem, StrategyMonteCarlo


def test_exact_degree_uniform_strategy(benchmark):
    """Exact H* for a wide uniform strategy in the paper-sized system."""
    analyzer = AnonymityAnalyzer(SystemModel(n_nodes=100))
    distribution = UniformLength(0, 99)
    value = benchmark(analyzer.anonymity_degree, distribution)
    assert 6.4 < value < 6.65


def test_posterior_inference_single_observation(benchmark):
    """Exact Bayesian posterior for one observation with three compromised nodes."""
    model = SystemModel(n_nodes=100, n_compromised=3)
    inference = BayesianPathInference(model, UniformLength(1, 20))
    observation = observation_from_path(
        50, (7, 0, 23, 1, 64, 31), model.compromised_nodes()
    )
    posterior = benchmark(inference.posterior, observation)
    assert abs(sum(posterior.probabilities.values()) - 1.0) < 1e-9


def test_uniform_family_optimization(benchmark):
    """Width optimization of the uniform family for one target expectation."""
    model = SystemModel(n_nodes=100)
    scan = benchmark(best_uniform_for_mean, model, 20)
    assert scan.best_degree >= scan.degrees[0]


def test_end_to_end_protocol_send(benchmark):
    """One Onion Routing I transmission through the discrete-event engine."""
    model = SystemModel(n_nodes=50, n_compromised=2)
    system = AnonymousCommunicationSystem(model=model, protocol=OnionRoutingI(50))
    rng = np.random.default_rng(0)

    def send_one():
        sender = int(rng.integers(0, 50))
        return system.send(sender, payload="bench", rng=rng)

    outcome = benchmark(send_one)
    assert outcome.delivery.path_length == 5


def test_monte_carlo_batch(benchmark):
    """A 200-trial Monte-Carlo estimate for the Onion Routing I strategy."""
    model = SystemModel(n_nodes=60, n_compromised=1)
    strategy = deployed_system_strategies()["onion-routing-1"]
    experiment = StrategyMonteCarlo(model, strategy)

    report = benchmark.pedantic(
        lambda: experiment.run(200, rng=5), rounds=1, iterations=1
    )
    exact = AnonymityAnalyzer(model).anonymity_degree(FixedLength(5))
    assert report.estimate.contains(exact, slack=0.05)
