"""Micro-benchmarks of the computational engines themselves.

These are not paper figures; they document the cost of the building blocks a
downstream user composes: the exact anonymity-degree computation, the
Bayesian posterior for one observation, the optimizer, a single end-to-end
protocol transmission, and the Monte-Carlo estimator — plus the kernel-tier
comparison: every engine's fused single-pass accumulator against its staged
``sample_block → classify → score`` twin, with the asserted floor **fused
five-class >= 2x staged** written to ``BENCH_engines.json``.
"""

from __future__ import annotations

import time
import types

import numpy as np
from perf_record import write_record

from repro.adversary.inference import BayesianPathInference
from repro.adversary.observation import observation_from_path
from repro.batch.engine import TrialEngine, select_engine
from repro.batch.jit import HAVE_NUMBA, FiveClassJitEngine
from repro.core.anonymity import AnonymityAnalyzer
from repro.core.model import PathModel, SystemModel
from repro.core.optimizer import best_uniform_for_mean
from repro.distributions import FixedLength, GeometricLength, UniformLength
from repro.protocols import OnionRoutingI
from repro.routing.strategies import (
    PathSelectionStrategy,
    deployed_system_strategies,
)
from repro.simulation import AnonymousCommunicationSystem, StrategyMonteCarlo


def test_exact_degree_uniform_strategy(benchmark):
    """Exact H* for a wide uniform strategy in the paper-sized system."""
    analyzer = AnonymityAnalyzer(SystemModel(n_nodes=100))
    distribution = UniformLength(0, 99)
    value = benchmark(analyzer.anonymity_degree, distribution)
    assert 6.4 < value < 6.65


def test_posterior_inference_single_observation(benchmark):
    """Exact Bayesian posterior for one observation with three compromised nodes."""
    model = SystemModel(n_nodes=100, n_compromised=3)
    inference = BayesianPathInference(model, UniformLength(1, 20))
    observation = observation_from_path(
        50, (7, 0, 23, 1, 64, 31), model.compromised_nodes()
    )
    posterior = benchmark(inference.posterior, observation)
    assert abs(sum(posterior.probabilities.values()) - 1.0) < 1e-9


def test_uniform_family_optimization(benchmark):
    """Width optimization of the uniform family for one target expectation."""
    model = SystemModel(n_nodes=100)
    scan = benchmark(best_uniform_for_mean, model, 20)
    assert scan.best_degree >= scan.degrees[0]


def test_end_to_end_protocol_send(benchmark):
    """One Onion Routing I transmission through the discrete-event engine."""
    model = SystemModel(n_nodes=50, n_compromised=2)
    system = AnonymousCommunicationSystem(model=model, protocol=OnionRoutingI(50))
    rng = np.random.default_rng(0)

    def send_one():
        sender = int(rng.integers(0, 50))
        return system.send(sender, payload="bench", rng=rng)

    outcome = benchmark(send_one)
    assert outcome.delivery.path_length == 5


def test_monte_carlo_batch(benchmark):
    """A 200-trial Monte-Carlo estimate for the Onion Routing I strategy."""
    model = SystemModel(n_nodes=60, n_compromised=1)
    strategy = deployed_system_strategies()["onion-routing-1"]
    experiment = StrategyMonteCarlo(model, strategy)

    report = benchmark.pedantic(
        lambda: experiment.run(200, rng=5), rounds=1, iterations=1
    )
    exact = AnonymityAnalyzer(model).anonymity_degree(FixedLength(5))
    assert report.estimate.contains(exact, slack=0.05)


# ---------------------------------------------------------------------- #
# Kernel tiers: fused single-pass accumulators vs their staged twins      #
# ---------------------------------------------------------------------- #

#: The kernel-tier workload: the paper-sized system over geometric lengths.
KERNEL_NODES = 100
KERNEL_TRIALS = 2_000_000
KERNEL_SMOKE_TRIALS = 100_000
KERNEL_DISTRIBUTION = GeometricLength(0.25, max_length=40)
#: Chunk size of the comparison — the fused tier's cache-resident sweet spot
#: (the autotune ladder's typical winner); ``chunk_trials=None`` would measure
#: allocator and cache pressure on the 2M-element temporaries instead of
#: kernel cost.
KERNEL_CHUNK = 16_384
#: Acceptance floor: the fused five-class kernel at >= 2x its staged twin.
MIN_FUSED_SPEEDUP = 2.0

#: The engine domains compared: (record key, path model, compromised set).
KERNEL_DOMAINS = [
    ("five_class", PathModel.SIMPLE, frozenset({7})),
    ("arrangement", PathModel.SIMPLE, frozenset({7, 23})),
    ("cycle", PathModel.CYCLE_ALLOWED, frozenset({7})),
]


def _kernel_engine(path_model, compromised) -> TrialEngine:
    model = SystemModel(
        n_nodes=KERNEL_NODES,
        n_compromised=len(compromised),
        path_model=path_model,
    )
    strategy = PathSelectionStrategy(
        KERNEL_DISTRIBUTION.name, KERNEL_DISTRIBUTION, path_model=path_model
    )
    factory = select_engine(model, strategy, compromised)
    engine = factory(model, strategy, compromised)
    engine.chunk_trials = KERNEL_CHUNK
    return engine


def _staged_twin(engine: TrialEngine) -> TrialEngine:
    """The same engine instance shape, pinned to the staged default path."""
    twin = _kernel_engine(
        engine.strategy.path_model, engine.compromised
    )
    twin.fused_accumulate = types.MethodType(TrialEngine.fused_accumulate, twin)
    return twin


def _accumulate_tps(engine: TrialEngine, n_trials: int) -> float:
    """Best-of-three trials/sec of one engine's ``run_accumulate``."""
    best = 0.0
    for _ in range(3):
        started = time.perf_counter()
        engine.run_accumulate(n_trials, rng=9)
        best = max(best, n_trials / (time.perf_counter() - started))
    return best


def test_fused_kernel_tier_floor(smoke):
    """The kernel-tier record: fused vs staged trials/sec for every engine.

    Correctness rides along: each fused accumulator is asserted bit-identical
    to its staged twin's before the clocks matter, so the record can never
    report the speed of a wrong kernel.  The floor — fused five-class >= 2x
    staged — is asserted on the full workload only.
    """
    n_trials = KERNEL_SMOKE_TRIALS if smoke else KERNEL_TRIALS
    results: dict[str, float] = {}
    print()
    for key, path_model, compromised in KERNEL_DOMAINS:
        fused = _kernel_engine(path_model, compromised)
        staged = _staged_twin(fused)
        assert fused.run_accumulate(50_000, rng=1) == staged.run_accumulate(
            50_000, rng=1
        ), f"fused {fused.name} kernel is not bit-identical to its staged twin"
        fused_tps = _accumulate_tps(fused, n_trials)
        staged_tps = _accumulate_tps(staged, n_trials)
        results[f"fused_{key}_trials_per_sec"] = round(fused_tps, 1)
        results[f"staged_{key}_trials_per_sec"] = round(staged_tps, 1)
        results[f"fused_{key}_speedup"] = round(fused_tps / staged_tps, 2)
        print(
            f"{fused.name:<14}: fused {fused_tps:>12,.0f} trials/sec, "
            f"staged {staged_tps:>12,.0f} trials/sec "
            f"({fused_tps / staged_tps:.2f}x)"
        )

    if HAVE_NUMBA:
        model = SystemModel(
            n_nodes=KERNEL_NODES, n_compromised=1, path_model=PathModel.SIMPLE
        )
        strategy = PathSelectionStrategy(
            KERNEL_DISTRIBUTION.name, KERNEL_DISTRIBUTION
        )
        jit_engine = FiveClassJitEngine(model, strategy, frozenset({7}))
        jit_engine.chunk_trials = KERNEL_CHUNK
        jit_engine.run_accumulate(KERNEL_CHUNK, rng=0)  # compile outside the clock
        jit_tps = _accumulate_tps(jit_engine, n_trials)
        results["jit_five_class_trials_per_sec"] = round(jit_tps, 1)
        results["jit_five_class_speedup"] = round(
            jit_tps / results["staged_five_class_trials_per_sec"], 2
        )
        print(f"five-class-jit: fused {jit_tps:>12,.0f} trials/sec")

    write_record(
        "engines",
        smoke=smoke,
        config={
            "n_nodes": KERNEL_NODES,
            "n_trials": n_trials,
            "chunk_trials": KERNEL_CHUNK,
            "distribution": KERNEL_DISTRIBUTION.name,
            "floor_fused_five_class_speedup": MIN_FUSED_SPEEDUP,
            "have_numba": HAVE_NUMBA,
        },
        **results,
    )

    if smoke:
        return  # floors are only meaningful on the full workload
    assert results["fused_five_class_speedup"] >= MIN_FUSED_SPEEDUP, (
        f"fused five-class kernel is only "
        f"{results['fused_five_class_speedup']:.2f}x its staged twin; "
        f"the floor is {MIN_FUSED_SPEEDUP}x"
    )
