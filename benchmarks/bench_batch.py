"""Throughput benchmark: the vectorized batch estimator vs the hop-by-hop path.

This is the perf baseline for the ``repro.batch`` subsystem: the same
10k-trial estimation job (N=20 nodes, one compromised, uniform path lengths)
run through the ``event`` backend (``StrategyMonteCarlo`` — one observation
object and one exact posterior per trial) and through the ``batch`` backend in
both flavours (pure-Python columnar core, and the NumPy-accelerated kernels).

The asserted floor — **batch >= 10x the trials/sec of the hop-by-hop
estimator on the pure-Python core** — is deliberately far below the typical
measured ratio (hundreds to thousands of x) so the benchmark documents the
speedup without being timing-flaky; future PRs that regress the fast path
will still trip it long before users notice.

The headline measurement also writes a machine-readable ``BENCH_batch.json``
record (see :mod:`perf_record`) so the perf trajectory is tracked across PRs.
Under ``--smoke`` the workload shrinks and the floor is not asserted — the
record is still written, flagged ``"smoke": true``.

Run with::

    pytest benchmarks/bench_batch.py --benchmark-only -q
"""

from __future__ import annotations

import time

from perf_record import write_record

from repro.batch import BatchMonteCarlo
from repro.core.anonymity import AnonymityAnalyzer
from repro.core.model import SystemModel
from repro.distributions import UniformLength
from repro.routing.strategies import PathSelectionStrategy
from repro.simulation.experiment import StrategyMonteCarlo

#: The workload of the acceptance criterion: 10k trials, N=20, uniform lengths.
N_NODES = 20
N_TRIALS = 10_000
SMOKE_TRIALS = 2_000
DISTRIBUTION = UniformLength(2, 8)
#: Minimum required speedup of the pure-Python batch core over the
#: per-observation estimator (the measured ratio is far larger).
MIN_SPEEDUP = 10.0


def _workload():
    model = SystemModel(n_nodes=N_NODES, n_compromised=1)
    strategy = PathSelectionStrategy(DISTRIBUTION.name, DISTRIBUTION)
    return model, strategy


def _trials(smoke: bool) -> int:
    return SMOKE_TRIALS if smoke else N_TRIALS


def _trials_per_second(run, n_trials: int) -> float:
    started = time.perf_counter()
    run()
    return n_trials / (time.perf_counter() - started)


def test_event_backend_throughput(benchmark, smoke):
    """Baseline: the hop-by-hop StrategyMonteCarlo at the benchmark workload."""
    model, strategy = _workload()
    estimator = StrategyMonteCarlo(model, strategy)
    report = benchmark.pedantic(
        lambda: estimator.run(_trials(smoke), rng=0), rounds=1, iterations=1
    )
    exact = AnonymityAnalyzer(model).anonymity_degree(DISTRIBUTION)
    assert report.estimate.contains(exact, slack=0.02)


def test_batch_backend_throughput_pure_python(benchmark, smoke):
    """The pure-Python columnar core at the same workload."""
    model, strategy = _workload()
    estimator = BatchMonteCarlo(model, strategy, use_numpy=False)
    report = benchmark.pedantic(
        lambda: estimator.run(_trials(smoke), rng=0), rounds=3, iterations=1
    )
    exact = AnonymityAnalyzer(model).anonymity_degree(DISTRIBUTION)
    assert report.estimate.contains(exact, slack=0.02)


def test_batch_backend_throughput_numpy(benchmark, smoke):
    """The NumPy-accelerated kernels at the same workload."""
    model, strategy = _workload()
    estimator = BatchMonteCarlo(model, strategy, use_numpy=True)
    report = benchmark.pedantic(
        lambda: estimator.run(_trials(smoke), rng=0), rounds=3, iterations=1
    )
    exact = AnonymityAnalyzer(model).anonymity_degree(DISTRIBUTION)
    assert report.estimate.contains(exact, slack=0.02)


def test_batch_speedup_floor(smoke):
    """The acceptance criterion: pure-Python batch >= 10x hop-by-hop trials/sec.

    Measured directly (not via pytest-benchmark) so the ratio is computed in
    one process run, printed into the benchmark log, and written to
    ``BENCH_batch.json`` as the machine-readable perf record.
    """
    n_trials = _trials(smoke)
    model, strategy = _workload()
    exact = AnonymityAnalyzer(model).anonymity_degree(DISTRIBUTION)

    event = StrategyMonteCarlo(model, strategy)
    event_tps = _trials_per_second(lambda: event.run(n_trials, rng=0), n_trials)

    pure = BatchMonteCarlo(model, strategy, use_numpy=False)
    pure_tps = _trials_per_second(lambda: pure.run(n_trials, rng=0), n_trials)

    fast = BatchMonteCarlo(model, strategy, use_numpy=True)
    fast_tps = _trials_per_second(lambda: fast.run(n_trials, rng=0), n_trials)

    report = fast.run(n_trials, rng=0)
    print()
    print(f"event (hop-by-hop)     : {event_tps:>12,.0f} trials/sec")
    print(f"batch (pure Python)    : {pure_tps:>12,.0f} trials/sec "
          f"({pure_tps / event_tps:,.0f}x)")
    print(f"batch (NumPy kernels)  : {fast_tps:>12,.0f} trials/sec "
          f"({fast_tps / event_tps:,.0f}x)")
    print(f"estimate {report.estimate} vs exact {exact:.4f}")

    write_record(
        "batch",
        smoke=smoke,
        config={
            "n_nodes": N_NODES,
            "n_trials": n_trials,
            "distribution": DISTRIBUTION.name,
            "floor_speedup": MIN_SPEEDUP,
        },
        event_trials_per_sec=round(event_tps, 1),
        batch_pure_trials_per_sec=round(pure_tps, 1),
        batch_numpy_trials_per_sec=round(fast_tps, 1),
        speedup_pure=round(pure_tps / event_tps, 2),
        speedup_numpy=round(fast_tps / event_tps, 2),
    )

    assert report.estimate.contains(exact, slack=0.02)
    if smoke:
        return  # floors are only meaningful on the full workload
    assert pure_tps >= MIN_SPEEDUP * event_tps, (
        f"pure-Python batch core is only {pure_tps / event_tps:.1f}x the "
        f"hop-by-hop estimator; the floor is {MIN_SPEEDUP}x"
    )
    assert fast_tps >= pure_tps * 0.5, (
        "NumPy kernels should not be dramatically slower than the pure core"
    )
