"""Throughput benchmark: the vectorized batch estimator vs the hop-by-hop path.

This is the perf baseline for the ``repro.batch`` subsystem: the same
10k-trial estimation job (N=20 nodes, one compromised, uniform path lengths)
run through the ``event`` backend (``StrategyMonteCarlo`` — one observation
object and one exact posterior per trial) and through the ``batch`` backend in
both flavours (pure-Python columnar core, and the NumPy-accelerated kernels).

The asserted floor — **batch >= 10x the trials/sec of the hop-by-hop
estimator on the pure-Python core** — is deliberately far below the typical
measured ratio (hundreds to thousands of x) so the benchmark documents the
speedup without being timing-flaky; future PRs that regress the fast path
will still trip it long before users notice.

Run with::

    pytest benchmarks/bench_batch.py --benchmark-only -q
"""

from __future__ import annotations

import time

from repro.batch import BatchMonteCarlo
from repro.core.anonymity import AnonymityAnalyzer
from repro.core.model import SystemModel
from repro.distributions import UniformLength
from repro.routing.strategies import PathSelectionStrategy
from repro.simulation.experiment import StrategyMonteCarlo

#: The workload of the acceptance criterion: 10k trials, N=20, uniform lengths.
N_NODES = 20
N_TRIALS = 10_000
DISTRIBUTION = UniformLength(2, 8)
#: Minimum required speedup of the pure-Python batch core over the
#: per-observation estimator (the measured ratio is far larger).
MIN_SPEEDUP = 10.0


def _workload():
    model = SystemModel(n_nodes=N_NODES, n_compromised=1)
    strategy = PathSelectionStrategy(DISTRIBUTION.name, DISTRIBUTION)
    return model, strategy


def _trials_per_second(run, n_trials: int) -> float:
    started = time.perf_counter()
    run()
    return n_trials / (time.perf_counter() - started)


def test_event_backend_throughput(benchmark):
    """Baseline: the hop-by-hop StrategyMonteCarlo at the benchmark workload."""
    model, strategy = _workload()
    estimator = StrategyMonteCarlo(model, strategy)
    report = benchmark.pedantic(
        lambda: estimator.run(N_TRIALS, rng=0), rounds=1, iterations=1
    )
    exact = AnonymityAnalyzer(model).anonymity_degree(DISTRIBUTION)
    assert report.estimate.contains(exact, slack=0.02)


def test_batch_backend_throughput_pure_python(benchmark):
    """The pure-Python columnar core at the same workload."""
    model, strategy = _workload()
    estimator = BatchMonteCarlo(model, strategy, use_numpy=False)
    report = benchmark.pedantic(
        lambda: estimator.run(N_TRIALS, rng=0), rounds=3, iterations=1
    )
    exact = AnonymityAnalyzer(model).anonymity_degree(DISTRIBUTION)
    assert report.estimate.contains(exact, slack=0.02)


def test_batch_backend_throughput_numpy(benchmark):
    """The NumPy-accelerated kernels at the same workload."""
    model, strategy = _workload()
    estimator = BatchMonteCarlo(model, strategy, use_numpy=True)
    report = benchmark.pedantic(
        lambda: estimator.run(N_TRIALS, rng=0), rounds=3, iterations=1
    )
    exact = AnonymityAnalyzer(model).anonymity_degree(DISTRIBUTION)
    assert report.estimate.contains(exact, slack=0.02)


def test_batch_speedup_floor():
    """The acceptance criterion: pure-Python batch >= 10x hop-by-hop trials/sec.

    Measured directly (not via pytest-benchmark) so the ratio is computed in
    one process run and printed into the benchmark log as the perf record.
    """
    model, strategy = _workload()
    exact = AnonymityAnalyzer(model).anonymity_degree(DISTRIBUTION)

    event = StrategyMonteCarlo(model, strategy)
    event_tps = _trials_per_second(lambda: event.run(N_TRIALS, rng=0), N_TRIALS)

    pure = BatchMonteCarlo(model, strategy, use_numpy=False)
    pure_tps = _trials_per_second(lambda: pure.run(N_TRIALS, rng=0), N_TRIALS)

    fast = BatchMonteCarlo(model, strategy, use_numpy=True)
    fast_tps = _trials_per_second(lambda: fast.run(N_TRIALS, rng=0), N_TRIALS)

    report = fast.run(N_TRIALS, rng=0)
    print()
    print(f"event (hop-by-hop)     : {event_tps:>12,.0f} trials/sec")
    print(f"batch (pure Python)    : {pure_tps:>12,.0f} trials/sec "
          f"({pure_tps / event_tps:,.0f}x)")
    print(f"batch (NumPy kernels)  : {fast_tps:>12,.0f} trials/sec "
          f"({fast_tps / event_tps:,.0f}x)")
    print(f"estimate {report.estimate} vs exact {exact:.4f}")

    assert report.estimate.contains(exact, slack=0.02)
    assert pure_tps >= MIN_SPEEDUP * event_tps, (
        f"pure-Python batch core is only {pure_tps / event_tps:.1f}x the "
        f"hop-by-hop estimator; the floor is {MIN_SPEEDUP}x"
    )
    assert fast_tps >= pure_tps * 0.5, (
        "NumPy kernels should not be dramatically slower than the pure core"
    )
