"""Benchmark: the anonymity-versus-overhead trade-off (designer's view).

Not a figure of the paper, but the decision its Section 1 motivates: rerouting
buys anonymity with latency and traffic, so the useful output for a system
designer is the Pareto frontier of (expected overhead, anonymity degree) and
the marginal value of each additional hop.
"""

from __future__ import annotations

from repro.analysis.overhead import anonymity_per_hop, evaluate_tradeoff, pareto_frontier
from repro.core.model import SystemModel
from repro.distributions import FixedLength, UniformLength
from repro.utils.tables import format_table


def test_pareto_frontier(benchmark):
    """Efficient strategies among the fixed and uniform families (N=100, C=1)."""
    model = SystemModel(n_nodes=100, n_compromised=1)
    strategies = {f"F({l})": FixedLength(l) for l in (1, 2, 3, 5, 8, 13, 21, 34, 55, 80)}
    strategies.update(
        {f"U(1, {2 * mean - 1})": UniformLength(1, 2 * mean - 1) for mean in (3, 6, 12, 24)}
    )

    def compute():
        points = evaluate_tradeoff(model, strategies)
        return points, pareto_frontier(points)

    points, frontier = benchmark(compute)
    print()
    print(
        format_table(
            ("strategy", "E[L] (overhead)", "H*(S) bits", "normalized", "efficient"),
            [
                (
                    p.name,
                    p.expected_overhead,
                    p.degree_bits,
                    p.normalized,
                    "yes" if p in frontier else "",
                )
                for p in points
            ],
            title="Anonymity vs overhead, N=100, C=1",
        )
    )
    assert frontier
    assert all(not other.dominates(point) for point in frontier for other in points)


def test_marginal_anonymity_per_hop(benchmark):
    """Marginal anonymity of each additional hop; hops beyond the optimum cost anonymity."""
    model = SystemModel(n_nodes=100, n_compromised=1)
    rows = benchmark(anonymity_per_hop, model)
    last_useful_hop = max(length for length, _, gain in rows if gain > 1e-9)
    print(f"\nthe last hop that still buys anonymity is hop {last_useful_hop}")
    # The optimum is interior: beyond it every additional hop strictly costs
    # anonymity (the paper's long-path effect).
    assert 4 < last_useful_hop < model.max_simple_path_length
    beyond = [gain for length, _, gain in rows if length > last_useful_hop]
    assert all(gain <= 1e-9 for gain in beyond)
