"""Benchmark: overhead, in both senses the repo cares about.

* the paper's **anonymity-versus-overhead** trade-off (Section 1): rerouting
  buys anonymity with latency and traffic, so the useful output for a system
  designer is the Pareto frontier of (expected overhead, anonymity degree)
  and the marginal value of each additional hop;
* the telemetry subsystem's **instrumentation overhead**: with telemetry
  disabled (the null registry) the per-chunk cost of the hot-path hooks must
  stay under 5% of the chunk's own compute, and enabling collection must not
  blow up the end-to-end time.  Both numbers land in
  ``BENCH_telemetry_overhead.json``; the 5% floor is asserted on the full
  workload only (``--smoke`` still writes the record).
"""

from __future__ import annotations

import time

from perf_record import write_record

from repro.analysis.overhead import anonymity_per_hop, evaluate_tradeoff, pareto_frontier
from repro.batch.engine import select_engine
from repro.core.model import SystemModel
from repro.distributions import FixedLength, UniformLength
from repro.routing.strategies import PathSelectionStrategy
from repro.telemetry import activate, get_registry
from repro.utils.tables import format_table


def test_pareto_frontier(benchmark):
    """Efficient strategies among the fixed and uniform families (N=100, C=1)."""
    model = SystemModel(n_nodes=100, n_compromised=1)
    strategies = {f"F({l})": FixedLength(l) for l in (1, 2, 3, 5, 8, 13, 21, 34, 55, 80)}
    strategies.update(
        {f"U(1, {2 * mean - 1})": UniformLength(1, 2 * mean - 1) for mean in (3, 6, 12, 24)}
    )

    def compute():
        points = evaluate_tradeoff(model, strategies)
        return points, pareto_frontier(points)

    points, frontier = benchmark(compute)
    print()
    print(
        format_table(
            ("strategy", "E[L] (overhead)", "H*(S) bits", "normalized", "efficient"),
            [
                (
                    p.name,
                    p.expected_overhead,
                    p.degree_bits,
                    p.normalized,
                    "yes" if p in frontier else "",
                )
                for p in points
            ],
            title="Anonymity vs overhead, N=100, C=1",
        )
    )
    assert frontier
    assert all(not other.dominates(point) for point in frontier for other in points)


def test_marginal_anonymity_per_hop(benchmark):
    """Marginal anonymity of each additional hop; hops beyond the optimum cost anonymity."""
    model = SystemModel(n_nodes=100, n_compromised=1)
    rows = benchmark(anonymity_per_hop, model)
    last_useful_hop = max(length for length, _, gain in rows if gain > 1e-9)
    print(f"\nthe last hop that still buys anonymity is hop {last_useful_hop}")
    # The optimum is interior: beyond it every additional hop strictly costs
    # anonymity (the paper's long-path effect).
    assert 4 < last_useful_hop < model.max_simple_path_length
    beyond = [gain for length, _, gain in rows if length > last_useful_hop]
    assert all(gain <= 1e-9 for gain in beyond)


#: Telemetry-overhead workload: small chunks stress the per-chunk hooks.
OVERHEAD_TRIALS = 200_000
SMOKE_OVERHEAD_TRIALS = 20_000
OVERHEAD_CHUNK = 1_000
#: The contract of docs/observability.md: disabled instrumentation costs at
#: most this fraction of a chunk's own compute.
MAX_DISABLED_OVERHEAD = 0.05


def test_telemetry_overhead_bounds(smoke):
    """Disabled telemetry <= 5% of chunk time; enabled collection stays sane.

    The disabled hot path in ``TrialEngine.run_accumulate`` is one ``enabled``
    branch per chunk (twice), so its cost is measured directly — the no-op
    sequence timed in isolation — and compared against the measured per-chunk
    compute.  The measured sequence also covers the flight recorder's
    off-by-default branches: the service's ``journal is None`` check and the
    span hook's ``profiler is None`` lookup, so the ≤5% contract includes a
    disabled run ledger and a disabled stage profiler, not just bare
    telemetry.  The end-to-end enabled/disabled ratio is recorded alongside.
    """
    trials = SMOKE_OVERHEAD_TRIALS if smoke else OVERHEAD_TRIALS
    model = SystemModel(n_nodes=100, n_compromised=1)
    strategy = PathSelectionStrategy(
        name="U(2, 8)", distribution=UniformLength(2, 8)
    )
    compromised = frozenset(model.compromised_nodes())
    factory = select_engine(model, strategy, compromised)
    engine = factory(model=model, strategy=strategy, compromised=compromised)
    engine.chunk_trials = OVERHEAD_CHUNK

    def run_seconds() -> float:
        started = time.perf_counter()
        engine.run_accumulate(trials, rng=0)
        return time.perf_counter() - started

    run_seconds()  # warm-up (imports, allocator, numpy dispatch)
    disabled_seconds = min(run_seconds() for _ in range(3))
    with activate():
        enabled_seconds = min(run_seconds() for _ in range(3))

    # The added work per chunk with the null registry active, timed alone:
    # the engine's two enabled checks, the service's disabled-journal branch,
    # and the span hook's disabled-profiler lookup.
    telemetry = get_registry()
    assert not telemetry.enabled
    journal = None
    iterations = 200_000
    started = time.perf_counter()
    for _ in range(iterations):
        chunk_started = telemetry.clock() if telemetry.enabled else 0.0
        if telemetry.enabled:
            pass
        if journal is not None:
            pass
        profiler = getattr(telemetry, "profiler", None)
        if profiler is not None:
            pass
    noop_chunk_seconds = (time.perf_counter() - started) / iterations
    assert chunk_started == 0.0
    assert profiler is None

    n_chunks = trials // OVERHEAD_CHUNK
    chunk_seconds = disabled_seconds / n_chunks
    disabled_ratio = noop_chunk_seconds / chunk_seconds
    enabled_ratio = enabled_seconds / disabled_seconds

    print()
    print(f"chunk compute            : {chunk_seconds * 1e6:10.2f} us")
    print(f"disabled hooks per chunk : {noop_chunk_seconds * 1e9:10.2f} ns "
          f"({disabled_ratio:.4%} of the chunk)")
    print(f"enabled / disabled       : {enabled_ratio:10.3f}x end-to-end")

    write_record(
        "telemetry_overhead",
        smoke=smoke,
        config={
            "n_trials": trials,
            "chunk_trials": OVERHEAD_CHUNK,
            "n_nodes": model.n_nodes,
            "floor_disabled_overhead": MAX_DISABLED_OVERHEAD,
            "covers": "telemetry+journal+profiler disabled branches",
        },
        disabled_seconds=round(disabled_seconds, 5),
        enabled_seconds=round(enabled_seconds, 5),
        chunk_seconds=round(chunk_seconds, 8),
        disabled_noop_per_chunk_seconds=round(noop_chunk_seconds, 10),
        disabled_overhead_ratio=round(disabled_ratio, 6),
        enabled_over_disabled=round(enabled_ratio, 4),
    )

    if not smoke:
        # Timing floors are asserted on the full workload only.
        assert disabled_ratio <= MAX_DISABLED_OVERHEAD, (
            f"disabled telemetry costs {disabled_ratio:.2%} of a "
            f"{OVERHEAD_CHUNK}-trial chunk; the contract is "
            f"<= {MAX_DISABLED_OVERHEAD:.0%}"
        )
        assert enabled_ratio <= 2.0, (
            f"enabled telemetry is {enabled_ratio:.2f}x the disabled run; "
            "per-chunk collection should never dominate the compute"
        )
