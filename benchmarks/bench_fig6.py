"""Benchmark harness for Figure 6: the optimized path-length distribution.

For each target expected length ``L`` the optimized distribution (Section 5.4)
is compared against ``F(L)`` and ``U(2, 2L-2)``; the optimized strategy must
dominate both, and the benchmark records where the gain is largest.  This is
the paper's conclusion 4: after optimization, variable-length strategies beat
fixed-length strategies.
"""

from __future__ import annotations

from repro.experiments.fig6 import figure6


def test_fig6(benchmark, run_and_report):
    """Regenerate Figure 6 with the uniform-family optimization (paper's setup)."""
    data = run_and_report(benchmark, figure6)
    optimized = data.sweep.series_by_label("Optimized").values
    fixed = data.sweep.series_by_label("F(L)").values
    assert all(o >= f - 1e-9 for o, f in zip(optimized, fixed))


def test_fig6_full_simplex(benchmark, run_and_report):
    """Repeat the optimization over the full probability simplex (smaller sweep)."""
    data = run_and_report(
        benchmark, figure6, n_nodes=60, means=[3, 6, 10, 15], full_simplex=True
    )
    optimized = data.sweep.series_by_label("Optimized").values
    uniform = data.sweep.series_by_label("U(2, 2L-2)").values
    assert all(
        o >= u - 1e-9 for o, u in zip(optimized, uniform) if u == u  # skip NaN
    )
