"""Service benchmark: what the cache and the adaptive scheduler actually buy.

Two headline numbers for the ``repro.service`` subsystem, both written to the
machine-readable ``BENCH_service.json`` record (see :mod:`perf_record`):

* **cold vs warm cache** — the same content-addressed request answered twice
  through one :class:`~repro.service.EstimationService` backed by an on-disk
  cache, and a third time by a *fresh* service over the same directory (a
  pure disk hit).  The warm path must return the bit-identical report and be
  dramatically cheaper than computing;
* **adaptive vs fixed budget** — the trials the adaptive scheduler spends to
  reach the target CI half-width on the reference configuration
  (uniform lengths 3–8, N=50, C=1, target ±0.01 bits) against the fixed
  200k-trial budget a precision-blind caller would burn.

The asserted floors — warm-cache hits return identical bits, and the
adaptive run converges within **half** the fixed budget — are correctness
and efficiency guarantees rather than timing races, so they hold in
``--smoke`` mode too (smoke only shrinks the fixed reference budget).

Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_service.py -q -s
"""

from __future__ import annotations

import tempfile
import time

from perf_record import telemetry_breakdown, write_record

from repro.batch.backends import estimate_anonymity
from repro.distributions import UniformLength
from repro.service import DistributionSpec, EstimateRequest, EstimationService
from repro.telemetry import activate, write_snapshot

#: The reference configuration of the service acceptance criterion.
N_NODES = 50
DISTRIBUTION = UniformLength(3, 8)
PRECISION = 0.01
BLOCK_SIZE = 5_000
FIXED_TRIALS = 200_000
SMOKE_FIXED_TRIALS = 50_000
SEED = 7


def _request(max_trials: int) -> EstimateRequest:
    return EstimateRequest(
        n_nodes=N_NODES,
        distribution=DistributionSpec.from_distribution(DISTRIBUTION),
        precision=PRECISION,
        block_size=BLOCK_SIZE,
        max_trials=max_trials,
        seed=SEED,
    )


def test_service_cold_warm_and_adaptive_savings(smoke):
    """Cold compute vs warm cache, and adaptive vs fixed trial spend."""
    fixed_trials = SMOKE_FIXED_TRIALS if smoke else FIXED_TRIALS
    request = _request(fixed_trials)
    model = request.model()

    # The whole service section runs under a live registry, so the record
    # (and the uploaded snapshot) carries the per-stage breakdown: spans,
    # per-engine chunk timings, cache hits per tier, and stop reasons.
    with tempfile.TemporaryDirectory() as cache_dir, activate() as telemetry:
        with EstimationService(cache_dir=cache_dir) as service:
            started = time.perf_counter()
            cold = service.estimate(request)
            cold_seconds = time.perf_counter() - started

            started = time.perf_counter()
            warm = service.estimate(request)
            warm_seconds = time.perf_counter() - started

        # A fresh service over the same directory: the pure disk-hit path.
        with EstimationService(cache_dir=cache_dir) as fresh:
            started = time.perf_counter()
            disk = fresh.estimate(request)
            disk_seconds = time.perf_counter() - started
    snapshot = telemetry.snapshot()
    write_snapshot("metrics_snapshot.json", snapshot)

    started = time.perf_counter()
    fixed = estimate_anonymity(
        model, DISTRIBUTION, n_trials=fixed_trials, rng=SEED, backend="batch"
    )
    fixed_seconds = time.perf_counter() - started

    half_width = cold.report.estimate.ci_high - cold.report.estimate.mean
    print()
    print(f"cold (computed)   : {cold_seconds:8.4f}s "
          f"({cold.n_trials:,} trials, {cold.rounds} rounds)")
    print(f"warm (memory hit) : {warm_seconds:8.4f}s")
    print(f"warm (disk hit)   : {disk_seconds:8.4f}s")
    print(f"fixed {fixed_trials:,}-trial budget: {fixed_seconds:8.4f}s")
    print(f"adaptive estimate {cold.report.estimate} (±{half_width:.4f} bits)")
    print(f"fixed estimate    {fixed.estimate}")

    write_record(
        "service",
        smoke=smoke,
        config={
            "n_nodes": N_NODES,
            "distribution": DISTRIBUTION.name,
            "precision": PRECISION,
            "block_size": BLOCK_SIZE,
            "fixed_trials": fixed_trials,
            "seed": SEED,
        },
        cold_seconds=round(cold_seconds, 5),
        warm_memory_seconds=round(warm_seconds, 6),
        warm_disk_seconds=round(disk_seconds, 6),
        fixed_budget_seconds=round(fixed_seconds, 5),
        adaptive_trials=cold.n_trials,
        adaptive_rounds=cold.rounds,
        achieved_half_width=round(half_width, 6),
        trials_saved_vs_fixed=round(1.0 - cold.n_trials / fixed_trials, 4),
        telemetry=telemetry_breakdown(snapshot),
    )

    # Correctness floors (not timing races): identical bits from both cache
    # tiers, convergence, and a measurable trial saving.
    assert cold.converged and half_width <= PRECISION
    assert warm.from_cache and warm.report == cold.report
    assert disk.from_cache and disk.report == cold.report
    assert cold.n_trials * 2 <= fixed_trials, (
        f"adaptive spent {cold.n_trials} trials; expected at most half the "
        f"fixed budget of {fixed_trials}"
    )
