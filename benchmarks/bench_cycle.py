"""Throughput benchmark: the vectorized cycle engine vs the hop-by-hop engine.

This is the perf record for the cycle-allowed fast path of
:mod:`repro.batch.cycleengine`: the Crowds reference configuration — ``N=20``
nodes, the original deployment's coin-flip strategy (``p_forward=3/4``,
cycles allowed), one compromised node, the full-Bayes adversary — estimated

* hop by hop through :class:`~repro.simulation.experiment.StrategyMonteCarlo`
  (one concrete path, one observation, one exact cycle posterior per trial),
  and
* through the columnar :class:`~repro.batch.estimator.BatchMonteCarlo` cycle
  engine (blockwise Markov transition sampling, vectorized classification,
  one exact posterior per *class*).

The asserted floor — **batch >= 25x the event engine's trials/sec** — is the
acceptance criterion of the engine; two to three orders of magnitude is
typical because the event engine prices every trial individually while the
cycle engine prices each of the few dozen observation classes once.

Both engines are statistically identical (their per-trial entropies follow
the same law), which the parity test checks before anything is timed.

The measurement writes a machine-readable ``BENCH_cycle.json`` record (see
:mod:`perf_record`); the ``C = 2`` case of the ``cycle-multi`` engine merges
its numbers into the same record under ``c2_``-prefixed keys, with its own
floor against the hop-by-hop path.  Under ``--smoke`` the budgets shrink so
the whole run takes seconds; the records are written but the floors are not
asserted.

Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_cycle.py -q -s
"""

from __future__ import annotations

import time

from perf_record import update_record, write_record

from repro.batch import BatchMonteCarlo
from repro.core.model import PathModel, SystemModel
from repro.distributions import GeometricLength
from repro.routing.strategies import PathSelectionStrategy
from repro.simulation.experiment import StrategyMonteCarlo

#: The workload: the Crowds reference configuration on cycle-allowed paths.
N_NODES = 20
P_FORWARD = 0.75
EVENT_TRIALS = 2_000
BATCH_TRIALS = 2_000_000
SMOKE_EVENT_TRIALS = 300
SMOKE_BATCH_TRIALS = 100_000
#: Acceptance floor for the cycle engine over hop-by-hop estimation.
MIN_SPEEDUP = 25.0
#: Acceptance floor for the C = 2 cycle-multi engine over hop-by-hop.  The
#: multi-node classifier falls back to the scalar rule on multi-visit trials
#: (much more common at C = 2), so its floor sits below the C = 1 kernel's
#: while still demanding an order of magnitude over per-trial inference.
MIN_MULTI_SPEEDUP = 10.0
MULTI_BATCH_TRIALS = 1_000_000
SMOKE_MULTI_BATCH_TRIALS = 50_000


def _workload(n_compromised: int = 1):
    model = SystemModel(n_nodes=N_NODES, n_compromised=n_compromised)
    strategy = PathSelectionStrategy(
        "Crowds",
        GeometricLength(p_forward=P_FORWARD, minimum=1),
        path_model=PathModel.CYCLE_ALLOWED,
    )
    return model, strategy


def test_cycle_batch_matches_event_statistics():
    """Sanity before speed: the two cycle engines agree statistically."""
    model, strategy = _workload()
    event = StrategyMonteCarlo(model, strategy).run(1_500, rng=0)
    batch = BatchMonteCarlo(model, strategy).run(150_000, rng=0)
    gap = abs(event.degree_bits - batch.degree_bits)
    tolerance = 3.0 * (event.estimate.std_error + batch.estimate.std_error)
    assert gap <= tolerance, (
        f"event {event.estimate} vs batch {batch.estimate} differ by {gap:.5f}"
    )


def test_cycle_speedup_floor(smoke):
    """The acceptance criterion: the cycle engine >= 25x hop-by-hop trials/sec."""
    event_trials = SMOKE_EVENT_TRIALS if smoke else EVENT_TRIALS
    batch_trials = SMOKE_BATCH_TRIALS if smoke else BATCH_TRIALS
    model, strategy = _workload()

    event_engine = StrategyMonteCarlo(model, strategy)
    started = time.perf_counter()
    event_report = event_engine.run(event_trials, rng=0)
    event_seconds = time.perf_counter() - started

    batch_engine = BatchMonteCarlo(model, strategy)
    started = time.perf_counter()
    batch_report = batch_engine.run(batch_trials, rng=0)
    batch_seconds = time.perf_counter() - started

    event_tps = event_trials / event_seconds
    batch_tps = batch_trials / batch_seconds
    speedup = batch_tps / event_tps
    print()
    print(f"event (hop-by-hop) : {event_seconds:8.2f}s ({event_tps:,.0f} trials/sec)")
    print(f"batch (cycle eng.) : {batch_seconds:8.2f}s ({batch_tps:,.0f} trials/sec)")
    print(f"speedup            : {speedup:8.1f}x")
    print(f"event estimate {event_report.estimate}")
    print(f"batch estimate {batch_report.estimate}")

    write_record(
        "cycle",
        smoke=smoke,
        config={
            "n_nodes": N_NODES,
            "n_compromised": 1,
            "p_forward": P_FORWARD,
            "path_model": "cycle_allowed",
            "event_trials": event_trials,
            "batch_trials": batch_trials,
            "floor_speedup": MIN_SPEEDUP,
        },
        event_seconds=round(event_seconds, 3),
        batch_seconds=round(batch_seconds, 3),
        event_trials_per_sec=round(event_tps, 1),
        batch_trials_per_sec=round(batch_tps, 1),
        speedup=round(speedup, 1),
    )

    gap = abs(event_report.degree_bits - batch_report.degree_bits)
    tolerance = 3.0 * (
        event_report.estimate.std_error + batch_report.estimate.std_error
    )
    assert gap <= tolerance

    if smoke:
        return  # tiny budgets; record only
    assert speedup >= MIN_SPEEDUP, (
        f"cycle batch engine reached only {speedup:.1f}x over the hop-by-hop "
        f"event engine; the floor is {MIN_SPEEDUP}x"
    )


def test_cycle_multi_speedup_floor(smoke):
    """The C = 2 case: the cycle-multi engine vs hop-by-hop, its own floor."""
    event_trials = SMOKE_EVENT_TRIALS if smoke else EVENT_TRIALS
    batch_trials = SMOKE_MULTI_BATCH_TRIALS if smoke else MULTI_BATCH_TRIALS
    model, strategy = _workload(n_compromised=2)

    event_engine = StrategyMonteCarlo(model, strategy)
    started = time.perf_counter()
    event_report = event_engine.run(event_trials, rng=0)
    event_seconds = time.perf_counter() - started

    batch_engine = BatchMonteCarlo(model, strategy)
    assert batch_engine.engine.name == "cycle-multi"
    started = time.perf_counter()
    batch_report = batch_engine.run(batch_trials, rng=0)
    batch_seconds = time.perf_counter() - started

    event_tps = event_trials / event_seconds
    batch_tps = batch_trials / batch_seconds
    speedup = batch_tps / event_tps
    print()
    print(f"event C=2 (hop-by-hop)  : {event_seconds:8.2f}s ({event_tps:,.0f} trials/sec)")
    print(f"batch C=2 (cycle-multi) : {batch_seconds:8.2f}s ({batch_tps:,.0f} trials/sec)")
    print(f"speedup                 : {speedup:8.1f}x")
    print(f"event estimate {event_report.estimate}")
    print(f"batch estimate {batch_report.estimate}")

    update_record(
        "cycle",
        smoke=smoke,
        config={
            "c2_n_compromised": 2,
            "c2_event_trials": event_trials,
            "c2_batch_trials": batch_trials,
            "c2_floor_speedup": MIN_MULTI_SPEEDUP,
        },
        c2_event_seconds=round(event_seconds, 3),
        c2_batch_seconds=round(batch_seconds, 3),
        c2_event_trials_per_sec=round(event_tps, 1),
        c2_batch_trials_per_sec=round(batch_tps, 1),
        c2_speedup=round(speedup, 1),
    )

    gap = abs(event_report.degree_bits - batch_report.degree_bits)
    tolerance = 3.0 * (
        event_report.estimate.std_error + batch_report.estimate.std_error
    )
    assert gap <= tolerance

    if smoke:
        return  # tiny budgets; record only
    assert speedup >= MIN_MULTI_SPEEDUP, (
        f"cycle-multi engine reached only {speedup:.1f}x over the hop-by-hop "
        f"event engine at C=2; the floor is {MIN_MULTI_SPEEDUP}x"
    )
