"""Throughput benchmark: the topology engine vs hop-by-hop on restricted graphs.

This is the perf record for the graph-general fast path of
:mod:`repro.batch.topoengine`: a ring and a 4x5 grid of ``N=20`` nodes, one
compromised node, a uniform length strategy, estimated

* hop by hop through :class:`~repro.simulation.experiment.StrategyMonteCarlo`
  (one concrete path drawn through the graph selectors, one exact
  topology-table posterior per trial), and
* through the columnar :class:`~repro.batch.estimator.BatchMonteCarlo`
  ``topology`` engine (two bulk draws per trial resolved against per-sender
  inverse CDFs over the enumerated path law, one exact posterior per
  *class*).

The asserted floor — **batch >= 25x the event engine's trials/sec** on each
graph — is the acceptance criterion of the engine; the construction cost
(enumerating the path law once) is included in the timed batch run, so the
floor also guards against enumeration regressions.

Both engines are statistically identical (their per-trial entropies follow
the same law), which the parity test checks before anything is timed.

The measurement writes a machine-readable ``BENCH_topology.json`` record
(see :mod:`perf_record`); the grid case merges its numbers into the same
record under ``grid_``-prefixed keys.  Under ``--smoke`` the budgets shrink
so the whole run takes seconds; the records are written but the floors are
not asserted.

Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_topology.py -q -s
"""

from __future__ import annotations

import time

from perf_record import update_record, write_record

from repro.batch import BatchMonteCarlo
from repro.core.model import SystemModel
from repro.core.topology import Topology
from repro.distributions import UniformLength
from repro.routing.strategies import PathSelectionStrategy
from repro.simulation.experiment import StrategyMonteCarlo

#: The workload: N = 20 nodes routed over a ring and a 4x5 grid.
N_NODES = 20
LOW, HIGH = 1, 6
EVENT_TRIALS = 2_000
BATCH_TRIALS = 1_000_000
SMOKE_EVENT_TRIALS = 300
SMOKE_BATCH_TRIALS = 50_000
#: Acceptance floor for the topology engine over hop-by-hop estimation.
MIN_SPEEDUP = 25.0


def _workload(topology: Topology):
    model = SystemModel(n_nodes=N_NODES, n_compromised=1, topology=topology)
    strategy = PathSelectionStrategy("topology walk", UniformLength(LOW, HIGH))
    return model, strategy


def test_topology_batch_matches_event_statistics():
    """Sanity before speed: the two topology paths agree statistically."""
    model, strategy = _workload(Topology.ring(N_NODES))
    event = StrategyMonteCarlo(model, strategy).run(1_500, rng=0)
    batch = BatchMonteCarlo(model, strategy).run(150_000, rng=0)
    gap = abs(event.degree_bits - batch.degree_bits)
    tolerance = 3.0 * (event.estimate.std_error + batch.estimate.std_error)
    assert gap <= tolerance, (
        f"event {event.estimate} vs batch {batch.estimate} differ by {gap:.5f}"
    )


def _measure(topology: Topology, event_trials: int, batch_trials: int):
    model, strategy = _workload(topology)

    event_engine = StrategyMonteCarlo(model, strategy)
    started = time.perf_counter()
    event_report = event_engine.run(event_trials, rng=0)
    event_seconds = time.perf_counter() - started

    # Construction (the one-time path-law enumeration) is part of the timing:
    # it is the cost a cold estimate actually pays.
    started = time.perf_counter()
    batch_engine = BatchMonteCarlo(model, strategy)
    assert batch_engine.engine.name == "topology"
    batch_report = batch_engine.run(batch_trials, rng=0)
    batch_seconds = time.perf_counter() - started

    event_tps = event_trials / event_seconds
    batch_tps = batch_trials / batch_seconds
    speedup = batch_tps / event_tps
    print()
    print(f"topology {topology.spec}")
    print(f"event (hop-by-hop)   : {event_seconds:8.2f}s ({event_tps:,.0f} trials/sec)")
    print(f"batch (topology eng.): {batch_seconds:8.2f}s ({batch_tps:,.0f} trials/sec)")
    print(f"speedup              : {speedup:8.1f}x")
    print(f"event estimate {event_report.estimate}")
    print(f"batch estimate {batch_report.estimate}")

    gap = abs(event_report.degree_bits - batch_report.degree_bits)
    tolerance = 3.0 * (
        event_report.estimate.std_error + batch_report.estimate.std_error
    )
    assert gap <= tolerance
    return event_seconds, batch_seconds, event_tps, batch_tps, speedup


def test_topology_ring_speedup_floor(smoke):
    """The acceptance criterion on a ring: >= 25x hop-by-hop trials/sec."""
    event_trials = SMOKE_EVENT_TRIALS if smoke else EVENT_TRIALS
    batch_trials = SMOKE_BATCH_TRIALS if smoke else BATCH_TRIALS
    event_seconds, batch_seconds, event_tps, batch_tps, speedup = _measure(
        Topology.ring(N_NODES), event_trials, batch_trials
    )

    write_record(
        "topology",
        smoke=smoke,
        config={
            "n_nodes": N_NODES,
            "n_compromised": 1,
            "topology": "ring",
            "lengths": [LOW, HIGH],
            "event_trials": event_trials,
            "batch_trials": batch_trials,
            "floor_speedup": MIN_SPEEDUP,
        },
        event_seconds=round(event_seconds, 3),
        batch_seconds=round(batch_seconds, 3),
        event_trials_per_sec=round(event_tps, 1),
        batch_trials_per_sec=round(batch_tps, 1),
        speedup=round(speedup, 1),
    )

    if smoke:
        return  # tiny budgets; record only
    assert speedup >= MIN_SPEEDUP, (
        f"topology engine reached only {speedup:.1f}x over the hop-by-hop "
        f"event engine on a ring; the floor is {MIN_SPEEDUP}x"
    )


def test_topology_grid_speedup_floor(smoke):
    """The same floor on a 4x5 grid (richer path space, larger class table)."""
    event_trials = SMOKE_EVENT_TRIALS if smoke else EVENT_TRIALS
    batch_trials = SMOKE_BATCH_TRIALS if smoke else BATCH_TRIALS
    event_seconds, batch_seconds, event_tps, batch_tps, speedup = _measure(
        Topology.grid(4, 5), event_trials, batch_trials
    )

    update_record(
        "topology",
        smoke=smoke,
        config={
            "grid_topology": "grid:4x5",
            "grid_event_trials": event_trials,
            "grid_batch_trials": batch_trials,
            "grid_floor_speedup": MIN_SPEEDUP,
        },
        grid_event_seconds=round(event_seconds, 3),
        grid_batch_seconds=round(batch_seconds, 3),
        grid_event_trials_per_sec=round(event_tps, 1),
        grid_batch_trials_per_sec=round(batch_tps, 1),
        grid_speedup=round(speedup, 1),
    )

    if smoke:
        return  # tiny budgets; record only
    assert speedup >= MIN_SPEEDUP, (
        f"topology engine reached only {speedup:.1f}x over the hop-by-hop "
        f"event engine on a 4x5 grid; the floor is {MIN_SPEEDUP}x"
    )
