"""Setuptools shim.

The canonical project metadata lives in ``pyproject.toml``; this file exists
only so that fully offline environments without the ``wheel`` package can
still perform an editable install via the legacy code path
(``pip install -e . --no-use-pep517 --no-build-isolation``).
"""

from setuptools import setup

setup()
